package sim

import (
	"strings"
	"testing"

	"sereth/internal/node"
	"sereth/internal/p2p"
	"sereth/internal/types"
)

// fast returns a reduced workload for unit-test speed; the statistical
// assertions use enough seeds to be stable.
func fast(cfg ScenarioConfig) ScenarioConfig {
	cfg.Buys = 40
	if cfg.Sets > 40 {
		cfg.Sets = 40
	}
	return cfg
}

func TestScenarioValidation(t *testing.T) {
	cfg := Defaults()
	cfg.Buys = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero buys accepted")
	}
	cfg = Defaults()
	cfg.Sets = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative sets accepted")
	}
}

func TestRunCompletesAndAccounts(t *testing.T) {
	res, err := Run(fast(GethUnmodified(10, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.BuysSubmitted != 40 || res.SetsSubmitted != 11 { // 10 + opening set
		t.Errorf("submitted: %d buys, %d sets", res.BuysSubmitted, res.SetsSubmitted)
	}
	if res.BuysIncluded != res.BuysSubmitted {
		t.Errorf("buys included %d != submitted %d (drain incomplete)",
			res.BuysIncluded, res.BuysSubmitted)
	}
	if res.SetsIncluded != res.SetsSubmitted {
		t.Error("sets not fully included")
	}
	if res.Blocks == 0 || res.DurationS <= 0 {
		t.Error("no blocks mined")
	}
	if res.RawTps() <= 0 || res.StateTps() < 0 {
		t.Error("throughput not computed")
	}
	if res.StateTps() > res.RawTps() {
		t.Error("state throughput exceeds raw throughput")
	}
}

func TestAllSetsSucceed(t *testing.T) {
	// §V-A: sets are sent by the owner in nonce order and never depend on
	// a remote view, so every one succeeds in every scenario.
	for _, mk := range []func(int, int64) ScenarioConfig{GethUnmodified, SerethClient, SemanticMining} {
		res, err := Run(fast(mk(20, 3)))
		if err != nil {
			t.Fatal(err)
		}
		if res.SetEfficiency() != 1.0 {
			t.Errorf("%s: set efficiency %.3f != 1", res.Config.Name, res.SetEfficiency())
		}
	}
}

func TestSequentialHistoryEtaIsOne(t *testing.T) {
	// The paper's §V sanity check: single sender => zero failures.
	for seed := int64(1); seed <= 3; seed++ {
		res, err := SequentialHistory(seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Efficiency() != 1.0 {
			t.Errorf("seed %d: η = %.3f, want exactly 1.0", seed, res.Efficiency())
		}
		if res.SetEfficiency() != 1.0 {
			t.Errorf("seed %d: set η = %.3f", seed, res.SetEfficiency())
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a, err := Run(fast(SerethClient(10, 77)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fast(SerethClient(10, 77)))
	if err != nil {
		t.Fatal(err)
	}
	if a.BuysSucceeded != b.BuysSucceeded || a.Blocks != b.Blocks {
		t.Error("same seed, different outcome")
	}
}

// TestFigure2Ordering is the headline assertion: over a small sweep the
// three lines must order semantic > sereth > geth, with sereth a clear
// multiple of geth (the paper's 5x claim) and semantic in the 70-100%
// band.
func TestFigure2Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	seeds := DefaultSeeds(4)
	mean := func(mk func(int, int64) ScenarioConfig, sets int) float64 {
		var sum float64
		for _, seed := range seeds {
			res, err := Run(mk(sets, seed))
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Efficiency()
		}
		return sum / float64(len(seeds))
	}
	for _, sets := range []int{50, 10} {
		geth := mean(GethUnmodified, sets)
		sereth := mean(SerethClient, sets)
		semantic := mean(SemanticMining, sets)
		t.Logf("sets=%d geth=%.3f sereth=%.3f semantic=%.3f", sets, geth, sereth, semantic)
		if !(semantic > sereth && sereth > geth) {
			t.Errorf("sets=%d: ordering broken: %.3f / %.3f / %.3f", sets, geth, sereth, semantic)
		}
		if sereth < 2*geth {
			t.Errorf("sets=%d: sereth (%.3f) not a clear multiple of geth (%.3f)", sets, sereth, geth)
		}
		if semantic < 0.6 {
			t.Errorf("sets=%d: semantic mining η %.3f below the paper's band", sets, semantic)
		}
	}
}

func TestRunFigure2SmokeAndFormat(t *testing.T) {
	points, err := RunFigure2([]int{10}, []int64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	table := FormatSweep(points)
	for _, want := range []string{"geth_unmodified", "sereth_client", "semantic_mining", "eta_mean"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestParticipationMonotoneEnds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	points, err := RunParticipation([]float64{0, 1}, DefaultSeeds(3), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatal("wrong point count")
	}
	if points[1].Eta.Mean <= points[0].Eta.Mean {
		t.Errorf("full participation (%.3f) not better than none (%.3f)",
			points[1].Eta.Mean, points[0].Eta.Mean)
	}
}

func TestGossipDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	points, err := RunGossip([]uint64{100, 8000}, DefaultSeeds(3), 20)
	if err != nil {
		t.Fatal(err)
	}
	// Heavily impeded TxPool propagation must not improve efficiency.
	if points[1].Eta.Mean > points[0].Eta.Mean+0.05 {
		t.Errorf("8s gossip (%.3f) beat 100ms gossip (%.3f)",
			points[1].Eta.Mean, points[0].Eta.Mean)
	}
}

func TestExtendHeadsRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	points, err := RunExtendHeads(DefaultSeeds(3), 50)
	if err != nil {
		t.Fatal(err)
	}
	base, ext := points[0], points[1]
	if base.Extended || !ext.Extended {
		t.Fatal("point order wrong")
	}
	if ext.Eta.Mean < base.Eta.Mean-0.05 {
		t.Errorf("extension (%.3f) notably worse than baseline (%.3f)",
			ext.Eta.Mean, base.Eta.Mean)
	}
}

func TestFixedCadenceStillWorks(t *testing.T) {
	cfg := fast(SemanticMining(10, 5))
	cfg.PoissonBlocks = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BuysIncluded != res.BuysSubmitted {
		t.Error("fixed cadence failed to drain")
	}
}

func TestDropRateRunStillCompletes(t *testing.T) {
	cfg := fast(SerethClient(10, 9))
	cfg.DropRate = 0.2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With dropped gossip some txs may never reach the miners, but the
	// run must terminate and account consistently.
	if res.BuysIncluded > res.BuysSubmitted {
		t.Error("included more than submitted")
	}
}

func TestDefaultSeeds(t *testing.T) {
	seeds := DefaultSeeds(3)
	if len(seeds) != 3 || seeds[0] == seeds[1] {
		t.Error("bad seeds")
	}
}

func TestClientModesWired(t *testing.T) {
	if GethUnmodified(5, 1).ClientMode != node.ModeGeth {
		t.Error("geth scenario mode")
	}
	if SerethClient(5, 1).ClientMode != node.ModeSereth {
		t.Error("sereth scenario mode")
	}
	cfg := SemanticMining(5, 1)
	if cfg.ClientMode != node.ModeSereth || cfg.SemanticFraction != 1 {
		t.Error("semantic scenario config")
	}
}

// TestEtaGoldenSeed101 pins η at seed 101 to the values recorded by the
// pre-refactor engine (BENCH_2026-07-28.json, PR 1): the network and
// scheduler refactor must keep the default 3-peer topology bit-identical.
func TestEtaGoldenSeed101(t *testing.T) {
	cases := []struct {
		name string
		mk   func(int, int64) ScenarioConfig
		sets int
		want float64
	}{
		{"geth/sets-20", GethUnmodified, 20, 0},
		{"geth/sets-5", GethUnmodified, 5, 0.09},
		{"sereth/sets-20", SerethClient, 20, 0.36},
		{"sereth/sets-5", SerethClient, 5, 0.64},
		{"semantic/sets-20", SemanticMining, 20, 0.68},
		{"semantic/sets-5", SemanticMining, 5, 0.88},
	}
	for _, tc := range cases {
		res, err := Run(tc.mk(tc.sets, 101))
		if err != nil {
			t.Fatal(err)
		}
		if res.Efficiency() != tc.want {
			t.Errorf("%s: η = %v, want exactly %v", tc.name, res.Efficiency(), tc.want)
		}
	}
}

// TestDeliveryTraceDeterministic replays the same seeded scenario twice
// and requires identical network delivery traces and η — the regression
// gate for the time-wheel scheduler and batched gossip.
func TestDeliveryTraceDeterministic(t *testing.T) {
	for _, topo := range []string{"mesh", "ring"} {
		run := func() ([]p2p.TraceEvent, float64) {
			cfg := fast(SerethClient(10, 42))
			cfg.Topology = topo
			s, err := newScenario(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var trace []p2p.TraceEvent
			s.net.Trace(func(e p2p.TraceEvent) { trace = append(trace, e) })
			res, err := s.run()
			if err != nil {
				t.Fatal(err)
			}
			return trace, res.Efficiency()
		}
		ta, ea := run()
		tb, eb := run()
		if ea != eb {
			t.Fatalf("%s: η differs across identical runs: %v vs %v", topo, ea, eb)
		}
		if len(ta) == 0 || len(ta) != len(tb) {
			t.Fatalf("%s: trace lengths %d vs %d", topo, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("%s: delivery %d differs: %+v vs %+v", topo, i, ta[i], tb[i])
			}
		}
	}
}

// TestLazyClientsMatchEagerValidation runs the same seeded scenario with
// eager and lazy clients: η, block count and the final state commitment
// must be identical — lazy validation changes trust, never results.
func TestLazyClientsMatchEagerValidation(t *testing.T) {
	run := func(lazy bool) (Result, types.Hash) {
		cfg := fast(SerethClient(10, 101))
		cfg.SemanticMiners = 2
		cfg.BaselineMiners = 2
		cfg.Clients = 2
		cfg.LazyClients = lazy
		s, err := newScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.run()
		if err != nil {
			t.Fatal(err)
		}
		return res, s.clients[0].Chain().Head().Header.StateRoot
	}
	eager, eagerRoot := run(false)
	lazy, lazyRoot := run(true)
	if eager.Efficiency() != lazy.Efficiency() {
		t.Errorf("lazy η %v != eager %v", lazy.Efficiency(), eager.Efficiency())
	}
	if eager.Blocks != lazy.Blocks || eager.BuysSucceeded != lazy.BuysSucceeded {
		t.Error("lazy clients changed run outcome")
	}
	if eagerRoot != lazyRoot {
		t.Error("lazy clients diverged from eager state commitment")
	}
}

// TestPopulationScalesToNPeers runs a figure2 cell on a 12-peer mesh and
// on sparse topologies: every scenario invariant must hold at population
// scale.
func TestPopulationScalesToNPeers(t *testing.T) {
	for _, tc := range []struct {
		name     string
		topology string
		degree   int
	}{
		{"mesh-12", "mesh", 0},
		{"ring-12", "ring", 0},
		{"dregular-12", "dregular", 4},
	} {
		cfg := fast(SerethClient(10, 7))
		cfg.SemanticMiners = 4
		cfg.BaselineMiners = 5
		cfg.Clients = 3
		cfg.Topology = tc.topology
		cfg.Degree = tc.degree
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.BuysIncluded != res.BuysSubmitted {
			t.Errorf("%s: included %d of %d buys (population failed to drain)",
				tc.name, res.BuysIncluded, res.BuysSubmitted)
		}
		if res.SetEfficiency() != 1.0 {
			t.Errorf("%s: set efficiency %.3f", tc.name, res.SetEfficiency())
		}
		if res.MsgsSent == 0 {
			t.Errorf("%s: no network traffic recorded", tc.name)
		}
	}
}

// TestMultiMinerDeterministic checks that the uniform producer draw over
// multi-miner pools is seed-stable.
func TestMultiMinerDeterministic(t *testing.T) {
	mk := func() ScenarioConfig {
		cfg := fast(SemanticMining(10, 31))
		cfg.SemanticMiners = 3
		cfg.BaselineMiners = 2
		return cfg
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.BuysSucceeded != b.BuysSucceeded || a.Blocks != b.Blocks {
		t.Error("multi-miner population not deterministic under seed")
	}
}

func TestPopulationValidation(t *testing.T) {
	cfg := Defaults()
	cfg.SemanticMiners = 0
	cfg.BaselineMiners = 2
	cfg.SemanticFraction = 0.5
	if _, err := Run(cfg); err == nil {
		t.Error("semantic fraction without semantic miners accepted")
	}
	cfg = Defaults()
	cfg.Topology = "torus"
	if _, err := Run(cfg); err == nil {
		t.Error("unknown topology accepted")
	}
}

// TestOverloadEvicts runs the sustained-overload family: arrival rate
// above block capacity against bounded evict-lowest mempools must
// displace pending transactions while the run still completes and
// accounts consistently.
func TestOverloadEvicts(t *testing.T) {
	cfg := Overload(3)
	cfg.Buys = 120
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted == 0 {
		t.Error("overload run displaced nothing — eviction not exercised")
	}
	if res.BuysIncluded > res.BuysSubmitted {
		t.Error("included more buys than submitted")
	}
	if res.BuysSubmitted+res.BuysDropped != 120 {
		t.Errorf("attempt accounting: submitted %d + dropped %d != 120",
			res.BuysSubmitted, res.BuysDropped)
	}
	if res.Blocks == 0 {
		t.Error("no blocks mined under overload")
	}
}

// TestRunOverloadSweep smoke-tests the experiment aggregation.
func TestRunOverloadSweep(t *testing.T) {
	points, err := RunOverload([]uint64{500}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].IntervalMs != 500 {
		t.Fatalf("points: %+v", points)
	}
	if points[0].Evictions.Mean <= 0 {
		t.Error("sweep recorded no evictions")
	}
}

// TestParallelSweepMatchesSequential verifies the worker-pool sweep is
// numerically identical to running the seeds one by one.
func TestParallelSweepMatchesSequential(t *testing.T) {
	seeds := DefaultSeeds(4)
	points, err := RunFigure2([]int{10}, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		var mk func(int, int64) ScenarioConfig
		for _, sc := range Figure2Scenarios {
			if sc.Name == p.Scenario {
				mk = sc.Make
			}
		}
		var sum float64
		for _, seed := range seeds {
			res, err := Run(mk(10, seed))
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Efficiency()
		}
		if mean := sum / float64(len(seeds)); mean != p.Eta.Mean {
			t.Errorf("%s: parallel mean %v != sequential %v", p.Scenario, p.Eta.Mean, mean)
		}
	}
}

// TestShapeApply checks the population override plumbing.
func TestShapeApply(t *testing.T) {
	sh := Shape{SemanticMiners: 3, Clients: 2, Topology: "ring"}
	cfg := sh.Apply(SerethClient(10, 1))
	if cfg.SemanticMiners != 3 || cfg.Clients != 2 || cfg.Topology != "ring" {
		t.Errorf("shape not applied: %+v", cfg)
	}
	if cfg.BaselineMiners != 0 {
		t.Error("unset shape field overrode config")
	}
}

// TestHighLatencyRingConverges pins the catch-up storm fix: on a ring
// where per-hop latency exceeds the block interval, every in-flight
// sync response used to spawn its own full-range block request and the
// run diverged (>10^6 messages). With the sync frontier dedup the run
// must complete with bounded traffic.
func TestHighLatencyRingConverges(t *testing.T) {
	cfg := fast(SerethClient(10, 101))
	cfg.GossipLatencyMs = 5000
	cfg.SemanticMiners = 4
	cfg.BaselineMiners = 3
	cfg.Clients = 2
	cfg.Topology = "ring"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MsgsSent > 20000 {
		t.Errorf("catch-up storm: %d messages for a 40-buy run", res.MsgsSent)
	}
	if res.Blocks == 0 {
		t.Error("no blocks committed")
	}
}

// TestBurstSizeOneMatchesPerTx pins the burst family's baseline: at
// BurstSize 1 the schedule degenerates to the per-tx sereth_client
// path, so a run must be bit-identical to the unbatched scenario at the
// same seed.
func TestBurstSizeOneMatchesPerTx(t *testing.T) {
	base := fast(SerethClient(10, 101))
	burst := base
	burst.BurstSize = 1
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(burst)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Efficiency() != r2.Efficiency() || r1.BuysIncluded != r2.BuysIncluded ||
		r1.Blocks != r2.Blocks || r1.MsgsSent != r2.MsgsSent {
		t.Errorf("burst=1 diverged from per-tx: η %v vs %v, msgs %d vs %d",
			r1.Efficiency(), r2.Efficiency(), r1.MsgsSent, r2.MsgsSent)
	}
}

// TestBurstBatchesGossip pins the point of the family: batching buys
// into shared envelopes must cut delivered messages versus per-tx
// gossip while every buy still reaches the chain.
func TestBurstBatchesGossip(t *testing.T) {
	perTx := fast(Burst(101))
	perTx.BurstSize = 1
	batched := fast(Burst(101))
	batched.BurstSize = 10
	r1, err := Run(perTx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(batched)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MsgsSent >= r1.MsgsSent {
		t.Errorf("batched gossip sent %d msgs, per-tx %d", r2.MsgsSent, r1.MsgsSent)
	}
	if r2.BuysSubmitted != perTx.Buys {
		t.Errorf("submitted %d of %d buys", r2.BuysSubmitted, perTx.Buys)
	}
	if r2.BuysIncluded == 0 {
		t.Error("no buys included under burst submission")
	}
}

// TestBurstMultiClient routes a burst across several client peers: each
// client ships its own sub-batch, and the run must stay consistent.
func TestBurstMultiClient(t *testing.T) {
	cfg := fast(Burst(101))
	cfg.BurstSize = 10
	cfg.SemanticMiners = 2
	cfg.BaselineMiners = 2
	cfg.Clients = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BuysSubmitted != cfg.Buys {
		t.Errorf("submitted %d of %d buys", res.BuysSubmitted, cfg.Buys)
	}
	if res.BuysIncluded == 0 || res.Blocks == 0 {
		t.Errorf("burst run stalled: included=%d blocks=%d", res.BuysIncluded, res.Blocks)
	}
}
