package sim

import (
	"fmt"

	"sereth/internal/metrics"
)

// Crash returns the base configuration of the crash-consistency family:
// the chaos population (both miner kinds active, spare peers to kill)
// with every node persisting, so a hard kill has real on-disk state to
// corrupt and a real datadir to come back from.
func Crash(seed int64) ScenarioConfig {
	cfg := Chaos(seed)
	cfg.Name = "crash"
	cfg.Persist = true
	return cfg
}

// CrashSingle: one persisting peer is killed mid-commit (unsynced log
// tail cut at a random byte) and restarts from its salvaged datadir.
func CrashSingle(seed int64) ScenarioConfig {
	cfg := Crash(seed)
	cfg.Name = "crash_single"
	cfg.Faults = FaultPlan{CrashPeers: 1, CrashDownMs: 30_000}
	return cfg
}

// CrashMulti: two peers crash independently at seeded random instants.
func CrashMulti(seed int64) ScenarioConfig {
	cfg := Crash(seed)
	cfg.Name = "crash_multi"
	cfg.Faults = FaultPlan{CrashPeers: 2, CrashDownMs: 30_000}
	return cfg
}

// CrashSyncEveryBlock: one crash against a store synced after every
// block — the recovered head should sit at (or next to) the kill point,
// minimizing the gossip catch-up.
func CrashSyncEveryBlock(seed int64) ScenarioConfig {
	cfg := Crash(seed)
	cfg.Name = "crash_sync1"
	cfg.Faults = FaultPlan{CrashPeers: 1, CrashDownMs: 30_000, CrashSyncEvery: 1}
	return cfg
}

// CrashPartitioned: a crash landing inside a network partition — the
// restarted peer salvages its log and then has to converge through the
// post-heal reorg as well.
func CrashPartitioned(seed int64) ScenarioConfig {
	cfg := Crash(seed)
	cfg.Name = "crash_partitioned"
	cfg.Faults = FaultPlan{
		CrashPeers:     1,
		CrashDownMs:    30_000,
		PartitionAtMs:  40_000,
		PartitionForMs: 45_000,
	}
	return cfg
}

// CrashVariants enumerates the crash scenario family (the BENCH crash/
// rows run one per variant).
var CrashVariants = []struct {
	Name string
	Make func(seed int64) ScenarioConfig
}{
	{"crash_single", CrashSingle},
	{"crash_multi", CrashMulti},
	{"crash_sync1", CrashSyncEveryBlock},
	{"crash_partitioned", CrashPartitioned},
}

// CrashPoint is one crash variant aggregated over seeds, paired with
// its honest twin (same configuration and seeds, faults disabled) so
// the kills' η cost is measured, not asserted.
type CrashPoint struct {
	Variant   string
	Eta       metrics.Summary // η with peers crashing
	HonestEta metrics.Summary // η with faults disabled, same seeds
	EtaDrop   float64         // honest mean − faulty mean

	// Crashes / Recoveries across every run; every crash must recover
	// (Recovered counts restarts that found a durable head on disk —
	// the rest legitimately restarted from genesis because the kill
	// predated any synced write).
	Crashes    int
	Recoveries int
	Recovered  int
	// Recovery latency percentiles (salvage + gossip catch-up), pooled
	// across every restart in every run.
	RecoveryP50Ms float64
	RecoveryP90Ms float64
	// Storage-salvage totals: bytes truncated as torn tail, records
	// quarantined, records repaired by single-bit correction.
	SalvageTornBytes   uint64
	SalvageQuarantined uint64
	SalvageCorrected   uint64
	// Converged reports whether every run ended with all online peers
	// (restarted ones included) on one head.
	Converged bool
}

// RunCrash sweeps the crash variants (all of them when names is empty)
// over the given seeds, each against its honest twin. A variant where
// any restart fails to salvage or reopen its datadir returns an error —
// that is the crash-consistency invariant breaking.
func RunCrash(names []string, seeds []int64, progress func(string), shape ...Shape) ([]CrashPoint, error) {
	sh := shapeOf(shape)
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var points []CrashPoint
	for _, v := range CrashVariants {
		if len(want) > 0 && !want[v.Name] {
			continue
		}
		mk := v.Make
		faulty, err := runSeeds(seeds, func(seed int64) ScenarioConfig {
			return sh.Apply(mk(seed))
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.Name, err)
		}
		honest, err := runSeeds(seeds, func(seed int64) ScenarioConfig {
			cfg := mk(seed)
			cfg.Name += "_honest"
			cfg.Faults = FaultPlan{}
			return sh.Apply(cfg)
		})
		if err != nil {
			return nil, fmt.Errorf("%s honest twin: %w", v.Name, err)
		}
		p := CrashPoint{
			Variant:   v.Name,
			Eta:       summarizeEtas(faulty),
			HonestEta: summarizeEtas(honest),
			Converged: true,
		}
		p.EtaDrop = p.HonestEta.Mean - p.Eta.Mean
		var recoveries []float64
		for _, res := range faulty {
			p.Crashes += res.Crashes
			p.Recoveries += res.CrashRecoveries
			p.Recovered += res.RecoveredBoots
			recoveries = append(recoveries, res.CrashRecoveryMs...)
			p.SalvageTornBytes += res.SalvageTornBytes
			p.SalvageQuarantined += res.SalvageQuarantined
			p.SalvageCorrected += res.SalvageCorrected
			if !res.Converged {
				p.Converged = false
			}
		}
		if p.Recoveries < p.Crashes {
			return nil, fmt.Errorf("%s: %d crashes but only %d recoveries", v.Name, p.Crashes, p.Recoveries)
		}
		if len(recoveries) > 0 {
			p.RecoveryP50Ms = metrics.Percentile(recoveries, 0.50)
			p.RecoveryP90Ms = metrics.Percentile(recoveries, 0.90)
		}
		points = append(points, p)
		if progress != nil {
			progress(fmt.Sprintf("%-18s η=%.3f honest=%.3f drop=%+.3f crashes=%d recovered-from-disk=%d torn=%dB recovery_p50=%.0fms converged=%v",
				p.Variant, p.Eta.Mean, p.HonestEta.Mean, p.EtaDrop, p.Crashes, p.Recovered,
				p.SalvageTornBytes, p.RecoveryP50Ms, p.Converged))
		}
	}
	return points, nil
}
