package sim

import (
	"testing"
)

// TestCrashSingleRecovers runs the single-kill variant end to end: the
// crashed peer must salvage its datadir, reopen on a durable head, and
// the whole population must converge.
func TestCrashSingleRecovers(t *testing.T) {
	res, err := Run(CrashSingle(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
	if res.CrashRecoveries != res.Crashes {
		t.Fatalf("recoveries %d != crashes %d", res.CrashRecoveries, res.Crashes)
	}
	if !res.Converged {
		t.Fatal("population did not converge after crash recovery")
	}
	if res.Efficiency() <= 0 {
		t.Fatalf("eta = %v", res.Efficiency())
	}
}

// TestCrashHonestTwinUnaffected pins the fault gating: a crash config
// with faults zeroed must produce the exact result of the plain
// persisted scenario — the crash layer never perturbs honest runs.
func TestCrashHonestTwinUnaffected(t *testing.T) {
	base := Crash(7)
	withLayer := Crash(7)
	withLayer.Faults = FaultPlan{}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(withLayer)
	if err != nil {
		t.Fatal(err)
	}
	if a.BuysSucceeded != b.BuysSucceeded || a.BuysIncluded != b.BuysIncluded || a.Blocks != b.Blocks {
		t.Fatalf("honest twin diverged: %+v vs %+v", a, b)
	}
}

// TestCrashMultiSweep exercises the multi-kill and sync-every-block
// variants across a few seeds via the public runner, honest twins
// included.
func TestCrashMultiSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is a long test")
	}
	seeds := []int64{101, 202}
	points, err := RunCrash([]string{"crash_multi", "crash_sync1"}, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Crashes == 0 {
			t.Fatalf("%s: no crashes happened", p.Variant)
		}
		if p.Recoveries < p.Crashes {
			t.Fatalf("%s: %d crashes, %d recoveries", p.Variant, p.Crashes, p.Recoveries)
		}
		if !p.Converged {
			t.Fatalf("%s: not converged", p.Variant)
		}
	}
}
