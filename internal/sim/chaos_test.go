package sim

import (
	"sync"
	"testing"

	"sereth/internal/p2p"
)

// fastChaos shrinks a chaos variant to the 40-buy test workload and
// rescales its fault schedule into the shorter submission window
// (buys span [15s, 55s] at the default intervals).
func fastChaos(cfg ScenarioConfig) ScenarioConfig {
	cfg = fast(cfg)
	if cfg.Faults.ChurnPeers > 0 {
		cfg.Faults.ChurnDownMs = 20_000
	}
	if cfg.Faults.PartitionForMs > 0 {
		cfg.Faults.PartitionAtMs = 20_000
		cfg.Faults.PartitionForMs = 25_000
	}
	return cfg
}

func TestPartitionHealConverges(t *testing.T) {
	res, err := Run(fastChaos(ChaosPartition(7)))
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionBlocked == 0 {
		t.Error("partition blocked no deliveries: the cut never took effect")
	}
	if !res.Converged {
		t.Fatal("population did not reconverge after the heal")
	}
	if res.BlocksMined < res.Blocks {
		t.Errorf("accounting: %d mined < %d canonical", res.BlocksMined, res.Blocks)
	}
	if res.BlocksOrphaned != res.BlocksMined-res.Blocks {
		t.Errorf("orphan accounting: %d != %d-%d", res.BlocksOrphaned, res.BlocksMined, res.Blocks)
	}
}

func TestChurnRejoinCatchUp(t *testing.T) {
	res, err := Run(fastChaos(ChaosChurn(11)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejoins != 2 {
		t.Fatalf("rejoins = %d, want 2", res.Rejoins)
	}
	if len(res.ResyncMs) != 2 || res.ResyncIncomplete != 0 {
		t.Fatalf("resyncs: %d recorded, %d incomplete (want 2, 0); latencies %v",
			len(res.ResyncMs), res.ResyncIncomplete, res.ResyncMs)
	}
	if !res.Converged {
		t.Fatal("rejoined peers did not catch back up to the population head")
	}
}

func TestCensoringMinerDegradesEta(t *testing.T) {
	cfg := fastChaos(ChaosCensor(13))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	honestCfg := cfg
	honestCfg.Faults = FaultPlan{}
	honest, err := Run(honestCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TxsCensored == 0 || res.CensoredSubmitted == 0 {
		t.Fatalf("censorship never engaged: %d exclusions, %d targeted buys",
			res.TxsCensored, res.CensoredSubmitted)
	}
	// Every miner censors, so targeted buys must never land.
	if res.CensoredIncluded != 0 {
		t.Errorf("%d targeted buys slipped past an all-censoring miner set", res.CensoredIncluded)
	}
	if res.BuysIncluded >= honest.BuysIncluded {
		t.Errorf("censorship did not reduce inclusion: %d included vs honest %d",
			res.BuysIncluded, honest.BuysIncluded)
	}
	if res.StateTps() >= honest.StateTps() {
		t.Errorf("state throughput did not degrade: %.3f vs honest %.3f",
			res.StateTps(), honest.StateTps())
	}
}

func TestForgerRejectedEverywhere(t *testing.T) {
	cfg := fastChaos(ChaosForger(17))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackTxsSent == 0 || res.ForgedBlocksSent == 0 {
		t.Fatalf("forger idle: %d txs, %d blocks sent", res.AttackTxsSent, res.ForgedBlocksSent)
	}
	if res.AttackTxsIncluded != 0 {
		t.Errorf("%d forged txs entered the canonical chain", res.AttackTxsIncluded)
	}
	if res.ForgedBlocksAccepted != 0 {
		t.Errorf("%d forged blocks entered the canonical chain", res.ForgedBlocksAccepted)
	}
	// The forger emits only rejected traffic and the chaos link policy is
	// clean, so the honest workload's outcome must be untouched — bit-for-
	// bit the same η as the faults-disabled twin at the same seed.
	honestCfg := cfg
	honestCfg.Faults = FaultPlan{}
	honest, err := Run(honestCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Efficiency() != honest.Efficiency() || res.BuysIncluded != honest.BuysIncluded {
		t.Errorf("rejected forgeries perturbed the honest outcome: η %.4f/%d vs %.4f/%d",
			res.Efficiency(), res.BuysIncluded, honest.Efficiency(), honest.BuysIncluded)
	}
}

func TestFrontrunnerReplaysDefused(t *testing.T) {
	res, err := Run(fastChaos(ChaosFrontrun(19)))
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackTxsSent == 0 {
		t.Fatal("frontrunner never replayed an offer")
	}
	// Replays are validly signed by a registered key at a gas premium, so
	// they DO get included; the RAA binding is what must defuse the stale
	// ones at execution.
	if res.AttackTxsIncluded == 0 {
		t.Error("no replay was included despite the gas premium")
	}
	if res.AttackTxsSucceeded > res.AttackTxsIncluded {
		t.Errorf("attack accounting: %d succeeded > %d included",
			res.AttackTxsSucceeded, res.AttackTxsIncluded)
	}
	if res.SetEfficiency() != 1 {
		t.Errorf("replays broke the owner's set chain: set η %.3f", res.SetEfficiency())
	}
	if !res.Converged {
		t.Error("population did not converge under replay attack")
	}
}

func TestChaosLossCompletes(t *testing.T) {
	res, err := Run(fastChaos(ChaosLoss(23)))
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkDropped == 0 {
		t.Error("lossy links dropped nothing")
	}
	if res.BuysIncluded == 0 {
		t.Error("no buys survived the lossy network")
	}
}

// TestChaosTraceDeterministic is the seed-plumbing audit: the heaviest
// chaos variant (churn + partition + lossy links) must replay the exact
// same delivery trace from the same seed.
func TestChaosTraceDeterministic(t *testing.T) {
	run := func() ([]p2p.TraceEvent, Result) {
		s, err := newScenario(fastChaos(ChaosCombined(29)))
		if err != nil {
			t.Fatal(err)
		}
		var trace []p2p.TraceEvent
		s.net.Trace(func(e p2p.TraceEvent) { trace = append(trace, e) })
		res, err := s.run()
		if err != nil {
			t.Fatal(err)
		}
		return trace, res
	}
	ta, ra := run()
	tb, rb := run()
	if ra.Efficiency() != rb.Efficiency() || ra.BlocksOrphaned != rb.BlocksOrphaned ||
		ra.LinkDropped != rb.LinkDropped || ra.PartitionBlocked != rb.PartitionBlocked {
		t.Fatalf("chaos results differ across identical runs:\n%+v\n%+v", ra, rb)
	}
	if len(ta) == 0 || len(ta) != len(tb) {
		t.Fatalf("trace lengths %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, ta[i], tb[i])
		}
	}
}

// TestChaosConcurrent runs three chaos variants in parallel; under
// `go test -race` it checks the fault layer for data races between the
// per-scenario populations.
func TestChaosConcurrent(t *testing.T) {
	variants := []func(int64) ScenarioConfig{ChaosChurn, ChaosPartition, ChaosLoss}
	var wg sync.WaitGroup
	for i, mk := range variants {
		wg.Add(1)
		go func(seed int64, mk func(int64) ScenarioConfig) {
			defer wg.Done()
			if _, err := Run(fastChaos(mk(seed))); err != nil {
				t.Error(err)
			}
		}(int64(31+i), mk)
	}
	wg.Wait()
}
