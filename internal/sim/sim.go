// Package sim is the evaluation harness: it reconstructs the paper's
// experiments (§V) on the simulated network. A scenario builds a small
// peer topology (two miner peers and a client peer), replays the
// dynamic-pricing workload — 100 buys at a fixed submit interval with
// sets evenly spaced over them — and measures transaction efficiency
// η = succeeded/included over the buys, exactly the quantity Figure 2
// plots against the buy:set ratio.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"sereth/internal/asm"
	"sereth/internal/chain"
	"sereth/internal/node"
	"sereth/internal/p2p"
	"sereth/internal/statedb"
	"sereth/internal/types"
	"sereth/internal/wallet"
)

// ScenarioConfig parameterizes one experiment run.
type ScenarioConfig struct {
	Name string
	Seed int64

	// Workload shape.
	Buys             int    // buy transactions per run (paper: 100)
	Sets             int    // set transactions spread over the buys
	SubmitIntervalMs uint64 // per-buy submission interval (paper: 1000)
	Buyers           int    // distinct buyer accounts, round-robin

	// Chain and network shape.
	BlockIntervalMs uint64 // mean block interval (paper regime: 15000)
	// PoissonBlocks draws each interval from an exponential distribution
	// with the above mean, clamped to [mean/4, 4*mean] — the variability
	// of proof-of-work block times that produces the paper's transient
	// backlogs and multi-block-stale views (§V-A). False = fixed cadence.
	PoissonBlocks   bool
	BlockGasLimit   uint64  // controls block capacity
	GossipLatencyMs uint64  // one-hop gossip delay
	DropRate        float64 // gossip loss probability
	// ReorderWindow is the baseline miner's same-price reordering noise
	// in transaction positions (gossip/heap skew); 0 = FIFO.
	ReorderWindow int

	// Client/miner configuration (the three Figure-2 lines).
	ClientMode node.Mode
	// SemanticFraction is the probability each block is produced by the
	// semantic miner instead of the baseline miner (participation
	// ablation; 0 = pure baseline, 1 = pure semantic mining).
	SemanticFraction float64
	// ExtendHeads enables the HMS orphan-recovery extension (ablation).
	ExtendHeads bool
	// SingleSender runs the §V sequential-history check: every
	// transaction from one address, so nonce order = block order.
	SingleSender bool
	// DrainBlocks bounds the extra block intervals mined after the last
	// submission so the backlog clears.
	DrainBlocks int
}

// Defaults returns the shared experiment parameterization (the private
// Ethereum-like regime of §V): 1 tx/s submissions, 15 s blocks, block
// capacity slightly below the arrival rate so a realistic backlog forms.
func Defaults() ScenarioConfig {
	return ScenarioConfig{
		Buys:             100,
		Sets:             20,
		SubmitIntervalMs: 1000,
		Buyers:           25,
		BlockIntervalMs:  15000,
		PoissonBlocks:    true,
		BlockGasLimit:    5_400_000, // 18 tx of 300k gas per block
		GossipLatencyMs:  250,
		ReorderWindow:    4,
		ClientMode:       node.ModeGeth,
		SemanticFraction: 0,
		DrainBlocks:      40,
	}
}

// GethUnmodified configures the baseline line of Figure 2.
func GethUnmodified(sets int, seed int64) ScenarioConfig {
	cfg := Defaults()
	cfg.Name = "geth_unmodified"
	cfg.Sets = sets
	cfg.Seed = seed
	cfg.ClientMode = node.ModeGeth
	return cfg
}

// SerethClient configures the HMS-without-miner-assistance line.
func SerethClient(sets int, seed int64) ScenarioConfig {
	cfg := Defaults()
	cfg.Name = "sereth_client"
	cfg.Sets = sets
	cfg.Seed = seed
	cfg.ClientMode = node.ModeSereth
	return cfg
}

// SemanticMining configures the miner-assisted line.
func SemanticMining(sets int, seed int64) ScenarioConfig {
	cfg := Defaults()
	cfg.Name = "semantic_mining"
	cfg.Sets = sets
	cfg.Seed = seed
	cfg.ClientMode = node.ModeSereth
	cfg.SemanticFraction = 1
	return cfg
}

// Result aggregates one scenario run.
type Result struct {
	Config ScenarioConfig

	BuysSubmitted int
	BuysIncluded  int
	BuysSucceeded int
	SetsSubmitted int
	SetsIncluded  int
	SetsSucceeded int
	Blocks        int
	DurationS     float64
}

// Efficiency returns η over the buys, the Figure-2 y-axis.
func (r Result) Efficiency() float64 {
	if r.BuysIncluded == 0 {
		return 0
	}
	return float64(r.BuysSucceeded) / float64(r.BuysIncluded)
}

// SetEfficiency returns η over the sets (the paper reports all sets
// succeed, §V-A).
func (r Result) SetEfficiency() float64 {
	if r.SetsIncluded == 0 {
		return 1
	}
	return float64(r.SetsSucceeded) / float64(r.SetsIncluded)
}

// RawTps returns raw throughput over the whole run.
func (r Result) RawTps() float64 {
	if r.DurationS <= 0 {
		return 0
	}
	return float64(r.BuysIncluded+r.SetsIncluded) / r.DurationS
}

// StateTps returns state throughput T_state = η·T_raw.
func (r Result) StateTps() float64 {
	if r.DurationS <= 0 {
		return 0
	}
	return float64(r.BuysSucceeded+r.SetsSucceeded) / r.DurationS
}

// Run executes the scenario and returns its result.
func Run(cfg ScenarioConfig) (Result, error) {
	s, err := newScenario(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.run()
}

type eventKind int

const (
	evSet eventKind = iota + 1
	evBuy
	evBlock
)

type event struct {
	at   uint64
	kind eventKind
	idx  int
}

type scenario struct {
	cfg ScenarioConfig
	rng *rand.Rand

	net         *p2p.Network
	semanticMin *node.Node
	baselineMin *node.Node
	client      *node.Node

	contract types.Address
	owner    *wallet.Key
	buyers   []*wallet.Key

	ownerNonce uint64
	buyerNonce []uint64
	ownerMark  types.Word // owner's locally-tracked chain of marks
	ownerValue types.Word // value of the owner's latest set
	ownerSets  int
	buysSent   int
	buyHashes  map[types.Hash]bool
	setHashes  map[types.Hash]bool
}

func newScenario(cfg ScenarioConfig) (*scenario, error) {
	if cfg.Buys <= 0 || cfg.Sets < 0 {
		return nil, fmt.Errorf("sim: invalid workload %d buys / %d sets", cfg.Buys, cfg.Sets)
	}
	if cfg.Buyers <= 0 {
		cfg.Buyers = 1
	}
	s := &scenario{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		contract:  types.Address{19: 0xcc},
		buyHashes: make(map[types.Hash]bool),
		setHashes: make(map[types.Hash]bool),
	}

	reg := wallet.NewRegistry()
	s.owner = wallet.NewKey(fmt.Sprintf("owner-%d", cfg.Seed))
	reg.Register(s.owner)
	if cfg.SingleSender {
		s.buyers = []*wallet.Key{s.owner}
	} else {
		for i := 0; i < cfg.Buyers; i++ {
			k := wallet.NewKey(fmt.Sprintf("buyer-%d-%d", cfg.Seed, i))
			reg.Register(k)
			s.buyers = append(s.buyers, k)
		}
	}
	s.buyerNonce = make([]uint64, len(s.buyers))

	genesis := statedb.New()
	genesis.SetCode(s.contract, asm.SerethContract())
	chainCfg := chain.Config{GasLimit: cfg.BlockGasLimit, Registry: reg}

	s.net = p2p.NewNetwork(p2p.Config{
		LatencyMs: cfg.GossipLatencyMs,
		DropRate:  cfg.DropRate,
		Seed:      cfg.Seed + 1,
	})

	mk := func(id p2p.PeerID, mode node.Mode, minerKind node.MinerKind) (*node.Node, error) {
		return node.New(node.Config{
			ID: id, Mode: mode, Miner: minerKind,
			Contract: s.contract, Chain: chainCfg, Genesis: genesis,
			Network: s.net, Seed: cfg.Seed + int64(id)*7,
			ExtendHeads: cfg.ExtendHeads, ReorderWindow: cfg.ReorderWindow,
		})
	}
	var err error
	if s.semanticMin, err = mk(1, node.ModeSereth, node.MinerSemantic); err != nil {
		return nil, err
	}
	if s.baselineMin, err = mk(2, node.ModeGeth, node.MinerBaseline); err != nil {
		return nil, err
	}
	if s.client, err = mk(3, cfg.ClientMode, node.MinerNone); err != nil {
		return nil, err
	}
	return s, nil
}

// schedule builds the merged submission timeline. The opening set
// happens at t=0 (the market's opening price, §II-F) and the buys start
// after the first block so they never read the empty genesis state.
func (s *scenario) schedule() []event {
	var events []event
	buyStart := s.cfg.BlockIntervalMs
	span := uint64(s.cfg.Buys) * s.cfg.SubmitIntervalMs

	events = append(events, event{at: 0, kind: evSet, idx: -1}) // opening price
	for i := 0; i < s.cfg.Buys; i++ {
		events = append(events, event{at: buyStart + uint64(i)*s.cfg.SubmitIntervalMs, kind: evBuy, idx: i})
	}
	for k := 0; k < s.cfg.Sets; k++ {
		at := buyStart + uint64(float64(k)*float64(span)/float64(s.cfg.Sets))
		events = append(events, event{at: at, kind: evSet, idx: k})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	return events
}

func (s *scenario) run() (Result, error) {
	events := s.schedule()
	lastSubmit := events[len(events)-1].at

	blockTime := s.nextBlockGap()
	ei := 0
	// Phase 1: interleave submissions and block production.
	for ei < len(events) || blockTime <= lastSubmit+s.cfg.BlockIntervalMs {
		nextEvent := ^uint64(0)
		if ei < len(events) {
			nextEvent = events[ei].at
		}
		if blockTime <= nextEvent {
			s.net.AdvanceTo(blockTime)
			if err := s.mine(blockTime); err != nil {
				return Result{}, err
			}
			blockTime += s.nextBlockGap()
			continue
		}
		s.net.AdvanceTo(nextEvent)
		if err := s.dispatch(events[ei]); err != nil {
			return Result{}, err
		}
		ei++
	}
	// Phase 2: drain the backlog.
	for i := 0; i < s.cfg.DrainBlocks; i++ {
		s.net.AdvanceTo(blockTime)
		if err := s.mine(blockTime); err != nil {
			return Result{}, err
		}
		blockTime += s.nextBlockGap()
		if s.poolsEmpty() {
			break
		}
	}
	s.net.Drain()
	return s.collect()
}

func (s *scenario) poolsEmpty() bool {
	return s.semanticMin.Pool().Len() == 0 &&
		s.baselineMin.Pool().Len() == 0 &&
		s.client.Pool().Len() == 0
}

// nextBlockGap draws the time to the next block: exponential with the
// configured mean under PoissonBlocks (clamped to [mean/4, 4*mean]),
// fixed otherwise.
func (s *scenario) nextBlockGap() uint64 {
	if !s.cfg.PoissonBlocks {
		return s.cfg.BlockIntervalMs
	}
	mean := float64(s.cfg.BlockIntervalMs)
	gap := s.rng.ExpFloat64() * mean
	if gap < mean/4 {
		gap = mean / 4
	}
	if gap > mean*4 {
		gap = mean * 4
	}
	return uint64(gap)
}

// mine picks the block producer per the semantic participation fraction.
func (s *scenario) mine(at uint64) error {
	producer := s.baselineMin
	if s.cfg.SemanticFraction > 0 && s.rng.Float64() < s.cfg.SemanticFraction {
		producer = s.semanticMin
	}
	_, err := producer.MineAndBroadcast(at / 1000)
	return err
}

func (s *scenario) dispatch(ev event) error {
	switch ev.kind {
	case evSet:
		return s.submitSet()
	case evBuy:
		return s.submitBuy(ev.idx)
	default:
		return fmt.Errorf("sim: unknown event kind %d", ev.kind)
	}
}

// submitSet issues the owner's next price change. The owner tracks its
// own mark chain locally (its transactions are sequentially consistent
// from its own thread, §II-C), so sets never need a remote view and all
// of them succeed — matching §V-A.
func (s *scenario) submitSet() error {
	price := types.WordFromUint64(uint64(10 + s.rng.Intn(90)))
	committedMark := s.client.StorageAt(s.contract, asm.SlotMark)
	flag := types.FlagChain
	if s.ownerMark == committedMark {
		flag = types.FlagHead
	}
	tx, err := s.client.SubmitSet(s.owner, s.ownerNonce, s.contract, flag, s.ownerMark, price)
	if err != nil {
		return fmt.Errorf("submit set %d: %w", s.ownerSets, err)
	}
	s.ownerNonce++
	s.ownerSets++
	s.ownerMark = types.NextMark(s.ownerMark, price)
	s.ownerValue = price
	s.setHashes[tx.Hash()] = true
	return nil
}

// submitBuy issues a buy from the next buyer using the client node's best
// view: committed storage on a Geth client, the RAA/HMS READ-UNCOMMITTED
// view on a Sereth client.
func (s *scenario) submitBuy(i int) error {
	buyerIdx := i % len(s.buyers)
	key := s.buyers[buyerIdx]

	var flag, mark, value types.Word
	var nonce uint64
	if s.cfg.SingleSender {
		// Sequential-history check (§V): the single sender knows its own
		// chain — real-time order = nonce order = block order, so its
		// locally-tracked (mark, value) is always exact.
		flag, mark, value = types.FlagChain, s.ownerMark, s.ownerValue
		nonce = s.ownerNonce
		s.ownerNonce++
	} else {
		flag, mark, value = s.client.ViewAMV(key.Address(), s.contract)
		nonce = s.buyerNonce[buyerIdx]
		s.buyerNonce[buyerIdx]++
	}
	tx, err := s.client.SubmitBuy(key, nonce, s.contract, flag, mark, value)
	if err != nil {
		return fmt.Errorf("submit buy %d: %w", i, err)
	}
	s.buysSent++
	s.buyHashes[tx.Hash()] = true
	return nil
}

// collect walks the client's chain and classifies every receipt.
func (s *scenario) collect() (Result, error) {
	res := Result{
		Config:        s.cfg,
		BuysSubmitted: s.buysSent,
		SetsSubmitted: s.ownerSets,
	}
	c := s.client.Chain()
	res.Blocks = int(c.Height())
	var lastTime uint64
	for n := uint64(1); n <= c.Height(); n++ {
		block := c.BlockByNumber(n)
		lastTime = block.Header.Time
		for _, receipt := range c.Receipts(block.Hash()) {
			succeeded := receipt.Status == types.StatusSucceeded
			switch {
			case s.buyHashes[receipt.TxHash]:
				res.BuysIncluded++
				if succeeded {
					res.BuysSucceeded++
				}
			case s.setHashes[receipt.TxHash]:
				res.SetsIncluded++
				if succeeded {
					res.SetsSucceeded++
				}
			}
		}
	}
	res.DurationS = float64(lastTime)
	return res, nil
}
