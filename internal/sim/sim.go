// Package sim is the evaluation harness: it reconstructs the paper's
// experiments (§V) on the simulated network. A scenario builds a peer
// population — by default the paper's 3-peer rig (one semantic miner,
// one baseline miner, one client), generalizable to N miners and M
// clients over an arbitrary topology — replays the dynamic-pricing
// workload, and measures transaction efficiency η = succeeded/included
// over the buys, exactly the quantity Figure 2 plots against the
// buy:set ratio. Submissions, block production and network delivery are
// all driven through one unified event timeline.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"sereth/internal/asm"
	"sereth/internal/chain"
	"sereth/internal/node"
	"sereth/internal/p2p"
	"sereth/internal/statedb"
	"sereth/internal/store"
	"sereth/internal/txpool"
	"sereth/internal/types"
	"sereth/internal/wallet"
)

// ScenarioConfig parameterizes one experiment run.
type ScenarioConfig struct {
	Name string
	Seed int64

	// Workload shape.
	Buys             int    // buy transactions per run (paper: 100)
	Sets             int    // set transactions spread over the buys
	SubmitIntervalMs uint64 // per-buy submission interval (paper: 1000)
	Buyers           int    // distinct buyer accounts, round-robin
	// BurstSize > 1 batches buy submissions: each group of BurstSize
	// consecutive buys is built against the submitting client's view at
	// the group's start instant and shipped through node.SubmitTxs — one
	// pool-admission batch and ONE batched gossip envelope
	// (p2p.BroadcastTxs) per client per burst, instead of per-tx
	// admission and gossip. The burst family assumes unbounded pools: a
	// refused submission aborts the run.
	BurstSize int

	// Chain and network shape.
	BlockIntervalMs uint64 // mean block interval (paper regime: 15000)
	// PoissonBlocks draws each interval from an exponential distribution
	// with the above mean, clamped to [mean/4, 4*mean] — the variability
	// of proof-of-work block times that produces the paper's transient
	// backlogs and multi-block-stale views (§V-A). False = fixed cadence.
	PoissonBlocks   bool
	BlockGasLimit   uint64  // controls block capacity
	GossipLatencyMs uint64  // one-hop gossip delay
	DropRate        float64 // gossip loss probability
	// ReorderWindow is the baseline miner's same-price reordering noise
	// in transaction positions (gossip/heap skew); 0 = FIFO.
	ReorderWindow int

	// Population shape. Zero values select the paper rig: one semantic
	// miner, one baseline miner, one client peer.
	SemanticMiners int
	BaselineMiners int
	Clients        int
	// Topology selects the gossip graph: "mesh" (default, one-hop full
	// mesh), "ring", or "dregular" (random Degree-regular with
	// multi-hop relay and duplicate suppression).
	Topology string
	Degree   int

	// Mempool shape (overload scenarios). PoolCapacity bounds every
	// node's pending pool; EvictOnFull displaces the oldest
	// lowest-priced resident instead of rejecting newcomers.
	PoolCapacity int
	EvictOnFull  bool
	// GasPriceSpread > 0 draws each buy's gas price from
	// [10, 10+spread) so overloaded pools have an eviction gradient;
	// sets then bid 10+spread to stay resident.
	GasPriceSpread int

	// Client/miner configuration (the three Figure-2 lines).
	ClientMode node.Mode
	// SemanticFraction is the probability each block is produced by a
	// semantic miner instead of a baseline miner (participation
	// ablation; 0 = pure baseline, 1 = pure semantic mining).
	SemanticFraction float64
	// ExtendHeads enables the HMS orphan-recovery extension (ablation).
	ExtendHeads bool
	// LazyClients switches the non-mining client peers to lazy
	// validation: they adopt the population's shared validated
	// executions without independent root comparison. Miners always
	// validate fully. Makes 1000-peer sweeps feasible; η is unaffected
	// (execution is deterministic either way).
	LazyClients bool
	// SingleSender runs the §V sequential-history check: every
	// transaction from one address, so nonce order = block order.
	SingleSender bool
	// DrainBlocks bounds the extra block intervals mined after the last
	// submission so the backlog clears.
	DrainBlocks int

	// Faults configures the fault-injection and adversary layer (chaos
	// family). The zero value disables it entirely and keeps the run
	// bit-identical to the pre-fault harness.
	Faults FaultPlan

	// ParallelExec routes every node's block execution through the
	// optimistic parallel processor (chain.ParallelProcessor) with a
	// deterministic 4-worker pool and threshold 1, so even small sim
	// bodies exercise the speculate/validate/merge path. Execution is
	// bit-identical to the sequential processor by construction (and by
	// the differential suite), so every measured η is unaffected.
	ParallelExec bool

	// RPCClients publishes every client peer behind a real HTTP JSON-RPC
	// endpoint (rpc.Server on an httptest listener): view reads travel
	// as sereth_view / eth_getStorageAt calls and submissions as
	// eth_sendRawTransaction, exercising the full serving tier
	// in-process. The round trip returns the same view words and admits
	// the same signed transactions, so every measured η is unaffected.
	// Burst submissions (BurstSize > 1) keep the in-process batched
	// pipeline — JSON-RPC has no batch submit.
	RPCClients bool

	// Persist backs every node's chain with its own in-memory
	// store.Store, so each adopted block flushes dirty state and block
	// records exactly as a disk-backed deployment would. Persistence is
	// write-through — it never changes execution — so every measured η
	// is unaffected.
	Persist bool
}

// Defaults returns the shared experiment parameterization (the private
// Ethereum-like regime of §V): 1 tx/s submissions, 15 s blocks, block
// capacity slightly below the arrival rate so a realistic backlog forms.
func Defaults() ScenarioConfig {
	return ScenarioConfig{
		Buys:             100,
		Sets:             20,
		SubmitIntervalMs: 1000,
		Buyers:           25,
		BlockIntervalMs:  15000,
		PoissonBlocks:    true,
		BlockGasLimit:    5_400_000, // 18 tx of 300k gas per block
		GossipLatencyMs:  250,
		ReorderWindow:    4,
		ClientMode:       node.ModeGeth,
		SemanticFraction: 0,
		DrainBlocks:      40,
	}
}

// GethUnmodified configures the baseline line of Figure 2.
func GethUnmodified(sets int, seed int64) ScenarioConfig {
	cfg := Defaults()
	cfg.Name = "geth_unmodified"
	cfg.Sets = sets
	cfg.Seed = seed
	cfg.ClientMode = node.ModeGeth
	return cfg
}

// SerethClient configures the HMS-without-miner-assistance line.
func SerethClient(sets int, seed int64) ScenarioConfig {
	cfg := Defaults()
	cfg.Name = "sereth_client"
	cfg.Sets = sets
	cfg.Seed = seed
	cfg.ClientMode = node.ModeSereth
	return cfg
}

// SemanticMining configures the miner-assisted line.
func SemanticMining(sets int, seed int64) ScenarioConfig {
	cfg := Defaults()
	cfg.Name = "semantic_mining"
	cfg.Sets = sets
	cfg.Seed = seed
	cfg.ClientMode = node.ModeSereth
	cfg.SemanticFraction = 1
	return cfg
}

// Overload configures the sustained-overload family: submissions arrive
// at a multiple of block capacity into bounded mempools with the
// evict-lowest policy, so the run exercises eviction of pending HMS
// parents — the §V-C orphaning mechanism under resource pressure.
func Overload(seed int64) ScenarioConfig {
	cfg := Defaults()
	cfg.Name = "overload"
	cfg.Seed = seed
	cfg.Buys = 200
	cfg.Sets = 20
	cfg.SubmitIntervalMs = 250 // 4 tx/s against ~1.2 tx/s block capacity
	cfg.ClientMode = node.ModeSereth
	cfg.PoolCapacity = 48
	cfg.EvictOnFull = true
	cfg.GasPriceSpread = 10
	cfg.DrainBlocks = 60
	return cfg
}

// Burst configures the burst-submission family: buys arrive in groups
// of BurstSize shipped through the batched admission + gossip pipeline
// (txpool.AdmitBatch, p2p.BroadcastTxs) instead of one envelope per
// transaction. At BurstSize 1 it degenerates to the sereth_client
// per-tx schedule, which anchors the sweep's baseline row.
func Burst(seed int64) ScenarioConfig {
	cfg := Defaults()
	cfg.Name = "burst"
	cfg.Seed = seed
	cfg.Sets = 20
	cfg.ClientMode = node.ModeSereth
	cfg.BurstSize = 10
	return cfg
}

// Result aggregates one scenario run.
type Result struct {
	Config ScenarioConfig

	BuysSubmitted int
	BuysIncluded  int
	BuysSucceeded int
	// BuysDropped counts buys the submitting client's own full pool
	// refused (overload scenarios).
	BuysDropped   int
	SetsSubmitted int
	SetsIncluded  int
	SetsSucceeded int
	SetsDropped   int
	Blocks        int
	DurationS     float64

	// Evicted sums evict-lowest displacements across every node's pool.
	Evicted uint64
	// MsgsSent / MsgsDropped are network delivery attempts and losses.
	MsgsSent    uint64
	MsgsDropped uint64

	// Robustness metrics (all zero outside the chaos family).

	// BlocksMined counts every block produced anywhere; the excess over
	// Blocks (the primary client's canonical height) is BlocksOrphaned —
	// mined but not canonical, the cost of partitions and gossip loss.
	BlocksMined    int
	BlocksOrphaned int
	// Rejoins counts churn rejoin events; ResyncMs holds, per rejoin,
	// the model time from rejoin until the peer caught back up to the
	// online population's height at rejoin. ResyncIncomplete counts
	// rejoined peers that never caught up.
	Rejoins          int
	ResyncMs         []float64
	ResyncIncomplete int
	// Crash-family accounting: hard kills of persisting peers, completed
	// restarts, restarts that recovered a durable head from disk (vs
	// falling back to genesis because the crash predated any durable
	// write), per-restart recovery latency (salvage + gossip catch-up),
	// and the storage-salvage totals across every restart.
	Crashes            int
	CrashRecoveries    int
	RecoveredBoots     int
	CrashRecoveryMs    []float64
	SalvageTornBytes   uint64
	SalvageQuarantined uint64
	SalvageCorrected   uint64
	// Converged reports whether every online peer ended on the primary
	// client's exact head (hash, not just height).
	Converged bool
	// TxsCensored counts censoring-miner exclusion events (one per
	// targeted pending tx per block build); CensoredSubmitted/Included
	// track the targeted senders' buys end to end.
	TxsCensored       uint64
	CensoredSubmitted int
	CensoredIncluded  int
	// Attack accounting: what the adversary emitted, what the honest
	// chain absorbed. ForgedBlocksAccepted must stay 0.
	AttackTxsSent        int
	AttackTxsIncluded    int
	AttackTxsSucceeded   int
	ForgedBlocksSent     int
	ForgedBlocksAccepted int
	// Fault-layer intervention counters (p2p.FaultStats).
	PartitionBlocked uint64
	LinkDropped      uint64
	LinkDuplicated   uint64
	LinkReordered    uint64
}

// Efficiency returns η over the buys, the Figure-2 y-axis.
func (r Result) Efficiency() float64 {
	if r.BuysIncluded == 0 {
		return 0
	}
	return float64(r.BuysSucceeded) / float64(r.BuysIncluded)
}

// SetEfficiency returns η over the sets (the paper reports all sets
// succeed, §V-A).
func (r Result) SetEfficiency() float64 {
	if r.SetsIncluded == 0 {
		return 1
	}
	return float64(r.SetsSucceeded) / float64(r.SetsIncluded)
}

// RawTps returns raw throughput over the whole run.
func (r Result) RawTps() float64 {
	if r.DurationS <= 0 {
		return 0
	}
	return float64(r.BuysIncluded+r.SetsIncluded) / r.DurationS
}

// StateTps returns state throughput T_state = η·T_raw.
func (r Result) StateTps() float64 {
	if r.DurationS <= 0 {
		return 0
	}
	return float64(r.BuysSucceeded+r.SetsSucceeded) / r.DurationS
}

// Run executes the scenario and returns its result.
func Run(cfg ScenarioConfig) (Result, error) {
	s, err := newScenario(cfg)
	if err != nil {
		return Result{}, err
	}
	defer s.cleanup()
	return s.run()
}

type eventKind int

const (
	evSet eventKind = iota + 1
	evBuy
	evBurst // a batch of BurstSize consecutive buys starting at idx
	evBlock
	// Fault-schedule events (chaos family). idx is the node index for
	// churn events and unused otherwise.
	evLeave
	evJoin
	evPartition
	evHeal
	evAttack
	// Crash-family events: a hard process kill of a persisting peer
	// (unsynced log tail cut, handle abandoned) and its restart from the
	// salvaged datadir.
	evCrash
	evRestart
)

type event struct {
	at   uint64
	kind eventKind
	idx  int
}

type scenario struct {
	cfg ScenarioConfig
	rng *rand.Rand

	net      *p2p.Network
	semantic []*node.Node // semantic-mining peers
	baseline []*node.Node // baseline-mining peers
	clients  []*node.Node // non-mining client peers
	nodes    []*node.Node // all peers
	rpc      *rpcFrontend // serving tier (nil unless RPCClients)

	contract types.Address
	owner    *wallet.Key
	buyers   []*wallet.Key

	ownerNonce  uint64
	buyerNonce  []uint64
	ownerMark   types.Word // owner's locally-tracked chain of marks
	ownerValue  types.Word // value of the owner's latest set
	ownerSets   int
	buysSent    int
	buysDropped int
	setsDropped int
	buyHashes   map[types.Hash]bool
	setHashes   map[types.Hash]bool

	// Fault-injection state (nil/zero outside the chaos family).
	adv         adversary
	advID       p2p.PeerID
	offline     map[p2p.PeerID]bool // churned-out peers
	rejoins     int
	resyncs     []resyncWatch // rejoined peers still catching up
	resyncDone  []float64     // completed resync latencies (ms)
	blocksMined int
	// Crash-family state: the node configs (for rebuilding a crashed
	// peer), the crash-eligible indexes chosen up front (those peers run
	// on fault-injected file stores), their datadirs and store handles,
	// and the recovery accounting.
	nodeCfgs        []node.Config
	crashIdxs       []int
	crashDirs       map[int]string
	crashFaults     map[int]*store.FaultStore
	crashes         int
	crashRecoveries int
	recoveredBoots  int
	crashRecoveryMs []float64
	salvageTorn     uint64
	salvageQuar     uint64
	salvageFixed    uint64
	// Censoring-miner accounting: the targeted sender set and the
	// hashes of their submitted buys.
	censorAddrs       map[types.Address]bool
	censoredHashes    map[types.Hash]bool
	censoredSubmitted int
	// Adversary emissions, shared with the actor; collect() scans the
	// canonical chain for them.
	attackTxs    map[types.Hash]bool
	forgedBlocks map[types.Hash]bool
}

// resyncWatch tracks one rejoined peer until it reaches the height the
// online population held when it rejoined.
type resyncWatch struct {
	idx    int
	joinAt uint64
	target uint64
	// crash marks a crash-restart watch: its latency is the disk-recovery
	// + catch-up time, reported separately from churn resyncs.
	crash bool
}

// population resolves the configured peer counts, defaulting to the
// paper's 3-peer rig when no population is specified.
func (cfg ScenarioConfig) population() (semantic, baseline, clients int) {
	semantic, baseline, clients = cfg.SemanticMiners, cfg.BaselineMiners, cfg.Clients
	if semantic == 0 && baseline == 0 {
		semantic, baseline = 1, 1
	}
	if clients == 0 {
		clients = 1
	}
	return semantic, baseline, clients
}

func newScenario(cfg ScenarioConfig) (*scenario, error) {
	if cfg.Buys <= 0 || cfg.Sets < 0 {
		return nil, fmt.Errorf("sim: invalid workload %d buys / %d sets", cfg.Buys, cfg.Sets)
	}
	if cfg.Buyers <= 0 {
		cfg.Buyers = 1
	}
	nSemantic, nBaseline, nClients := cfg.population()
	if nSemantic+nBaseline == 0 {
		return nil, fmt.Errorf("sim: population has no miners")
	}
	if cfg.SemanticFraction > 0 && nSemantic == 0 {
		return nil, fmt.Errorf("sim: semantic fraction %.2f with no semantic miners", cfg.SemanticFraction)
	}
	if cfg.SemanticFraction < 1 && nBaseline == 0 {
		return nil, fmt.Errorf("sim: semantic fraction %.2f needs baseline miners (population has none)", cfg.SemanticFraction)
	}
	s := &scenario{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		contract:  types.Address{19: 0xcc},
		buyHashes: make(map[types.Hash]bool),
		setHashes: make(map[types.Hash]bool),
	}

	reg := wallet.NewRegistry()
	s.owner = wallet.NewKey(fmt.Sprintf("owner-%d", cfg.Seed))
	reg.Register(s.owner)
	if cfg.SingleSender {
		s.buyers = []*wallet.Key{s.owner}
	} else {
		for i := 0; i < cfg.Buyers; i++ {
			k := wallet.NewKey(fmt.Sprintf("buyer-%d-%d", cfg.Seed, i))
			reg.Register(k)
			s.buyers = append(s.buyers, k)
		}
	}
	s.buyerNonce = make([]uint64, len(s.buyers))

	// Fault-layer setup that must precede node creation: the censoring
	// miners need their target list at construction time, and the
	// front-runner's key must be registered before the registry is
	// shared out.
	fp := cfg.Faults
	var censorTargets []types.Address
	censorLeft := 0
	if fp.Adversary == AdversaryCensor {
		k := fp.CensorTargets
		if k <= 0 {
			k = (len(s.buyers) + 3) / 4
		}
		if k > len(s.buyers) {
			k = len(s.buyers)
		}
		s.censorAddrs = make(map[types.Address]bool, k)
		s.censoredHashes = make(map[types.Hash]bool)
		for i := 0; i < k; i++ {
			censorTargets = append(censorTargets, s.buyers[i].Address())
			s.censorAddrs[s.buyers[i].Address()] = true
		}
		censorLeft = fp.CensorMiners
		if censorLeft <= 0 {
			censorLeft = nSemantic + nBaseline
		}
	}
	var frontKey *wallet.Key
	if fp.Adversary == AdversaryFrontrun {
		frontKey = wallet.NewKey(fmt.Sprintf("frontrunner-%d", cfg.Seed))
		reg.Register(frontKey)
	}

	genesis := statedb.New()
	genesis.SetCode(s.contract, asm.SerethContract())
	// One shared validated-execution cache for the whole population: the
	// first importer of each block (usually its miner) replays it once,
	// everyone else verifies by root comparison (§II-D economics without
	// N identical replays per in-process block).
	chainCfg := chain.Config{
		GasLimit:  cfg.BlockGasLimit,
		Registry:  reg,
		ExecCache: chain.NewExecCache(0),
	}
	if cfg.ParallelExec {
		chainCfg.Parallel = true
		// Fixed worker count (not GOMAXPROCS) and threshold 1: sim runs
		// must exercise the parallel path deterministically regardless of
		// the host's core count — on a single-core runner GOMAXPROCS
		// would silently fall back to the sequential path.
		chainCfg.ParallelWorkers = 4
		chainCfg.ParallelThreshold = 1
	}

	topo, err := p2p.ParseTopology(cfg.Topology, cfg.Degree, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	netCfg := p2p.Config{
		LatencyMs: cfg.GossipLatencyMs,
		DropRate:  cfg.DropRate,
		Seed:      cfg.Seed + 1,
		Topology:  topo,
	}
	if fp.Enabled() {
		// All link-fault randomness comes from a namespaced sub-seed, so
		// enabling the layer never perturbs the base delivery stream.
		netCfg.Faults = &p2p.FaultConfig{
			Seed:    subSeed(cfg.Seed, "p2p-faults"),
			Default: fp.linkPolicy(),
		}
	}
	s.net = p2p.NewNetwork(netCfg)

	// Crash-family setup: the crashing peers are drawn from the same
	// protected-set rules as churn (never the first miner of each kind or
	// the primary client), chosen before construction so they can be
	// built on fault-injected file stores from genesis on.
	crashSet := map[int]bool{}
	if fp.CrashPeers > 0 {
		if cfg.RPCClients {
			return nil, fmt.Errorf("sim: CrashPeers is incompatible with RPCClients (the frontend would serve dead nodes)")
		}
		protected := map[int]bool{0: true, nSemantic: true, nSemantic + nBaseline: true}
		var eligible []int
		for i := 0; i < nSemantic+nBaseline+nClients; i++ {
			if !protected[i] {
				eligible = append(eligible, i)
			}
		}
		crashRng := rand.New(rand.NewSource(subSeed(cfg.Seed, "crash")))
		crashRng.Shuffle(len(eligible), func(i, j int) {
			eligible[i], eligible[j] = eligible[j], eligible[i]
		})
		k := fp.CrashPeers
		if k > len(eligible) {
			k = len(eligible)
		}
		s.crashIdxs = append(s.crashIdxs, eligible[:k]...)
		sort.Ints(s.crashIdxs)
		for _, idx := range s.crashIdxs {
			crashSet[idx] = true
		}
		s.crashDirs = make(map[int]string, k)
		s.crashFaults = make(map[int]*store.FaultStore, k)
	}

	mk := func(idx int, id p2p.PeerID, mode node.Mode, minerKind node.MinerKind) (*node.Node, error) {
		nodeCfg := node.Config{
			ID: id, Mode: mode, Miner: minerKind,
			Contract: s.contract, Chain: chainCfg, Genesis: genesis,
			Network: s.net, Seed: cfg.Seed + int64(id)*7,
			ExtendHeads: cfg.ExtendHeads, ReorderWindow: cfg.ReorderWindow,
			PoolCapacity: cfg.PoolCapacity, EvictOnFull: cfg.EvictOnFull,
			Lazy: cfg.LazyClients && minerKind == node.MinerNone,
		}
		if minerKind != node.MinerNone && censorLeft > 0 {
			nodeCfg.CensorTargets = censorTargets
			censorLeft--
		}
		if cfg.Persist {
			nodeCfg.Store = store.NewMem()
		}
		if crashSet[idx] {
			dir, err := os.MkdirTemp("", "sereth-crash-")
			if err != nil {
				return nil, err
			}
			s.crashDirs[idx] = dir
			kv, err := store.OpenFile(dir)
			if err != nil {
				return nil, err
			}
			fault := store.NewFault(kv, s.crashPolicy(idx))
			s.crashFaults[idx] = fault
			nodeCfg.Store = fault
			nodeCfg.Chain.SyncEvery = s.crashSyncEvery()
			// A crashing peer must own everything it persists. The
			// population-shared exec cache and genesis state hand it
			// statedbs whose dirty trie nodes were already committed into
			// the FIRST committer's store — write-through adoption of those
			// would leave holes in this peer's own datadir, unrecoverable
			// after a kill. A private cache (every block re-executed
			// locally) and a private genesis instance (same root, fresh
			// dirty flags) keep its log complete; execution is
			// deterministic, so this changes only CPU time, never η.
			nodeCfg.Chain.ExecCache = chain.NewExecCache(0)
			nodeCfg.Genesis = s.freshGenesis()
		}
		// The config is remembered verbatim (minus the store, swapped at
		// restart) so a crashed peer can be rebuilt from its datadir.
		s.nodeCfgs = append(s.nodeCfgs, nodeCfg)
		return node.New(nodeCfg)
	}
	// Peer ids are assigned semantic miners first, then baseline miners,
	// then clients — the paper rig keeps its historical 1/2/3 layout.
	id := p2p.PeerID(1)
	for i := 0; i < nSemantic; i++ {
		n, err := mk(int(id)-1, id, node.ModeSereth, node.MinerSemantic)
		if err != nil {
			s.cleanup()
			return nil, err
		}
		s.semantic = append(s.semantic, n)
		id++
	}
	for i := 0; i < nBaseline; i++ {
		n, err := mk(int(id)-1, id, node.ModeGeth, node.MinerBaseline)
		if err != nil {
			s.cleanup()
			return nil, err
		}
		s.baseline = append(s.baseline, n)
		id++
	}
	for i := 0; i < nClients; i++ {
		n, err := mk(int(id)-1, id, cfg.ClientMode, node.MinerNone)
		if err != nil {
			s.cleanup()
			return nil, err
		}
		s.clients = append(s.clients, n)
		id++
	}
	s.nodes = append(append(append(s.nodes, s.semantic...), s.baseline...), s.clients...)

	if fp.Enabled() {
		s.offline = make(map[p2p.PeerID]bool)
		switch fp.Adversary {
		case AdversaryForger:
			s.attackTxs = make(map[types.Hash]bool)
			s.forgedBlocks = make(map[types.Hash]bool)
			s.advID = id
			fg := newForger(s.net, id, cfg.Seed, s.contract, s.attackTxs, s.forgedBlocks)
			s.adv = fg
			s.net.Join(id, fg)
		case AdversaryFrontrun:
			s.attackTxs = make(map[types.Hash]bool)
			s.advID = id
			fr := newFrontrunner(s.net, id, frontKey, s.contract, s.attackTxs)
			s.adv = fr
			s.net.Join(id, fr)
		case AdversaryCensor, "":
		default:
			return nil, fmt.Errorf("sim: unknown adversary %q", fp.Adversary)
		}
	}
	// The serving tier comes up last: newScenario has no error paths
	// after this point, so the listeners cannot leak on a failed build
	// (run tears them down).
	if cfg.RPCClients {
		s.rpc = newRPCFrontend(s.clients, s.contract)
	}
	return s, nil
}

// freshGenesis builds a private genesis state instance: bit-identical
// root, but with its own dirty-node tracking so a crash peer's store
// receives the full genesis commit (see the crash setup in mk).
func (s *scenario) freshGenesis() *statedb.StateDB {
	g := statedb.New()
	g.SetCode(s.contract, asm.SerethContract())
	return g
}

// crashPolicy is the storage fault policy a crash-eligible peer runs
// under: no active write faults, but a manual Crash() drops the
// unsynced log tail at a seeded random byte — a kill mid-commit.
func (s *scenario) crashPolicy(idx int) *store.FaultPolicy {
	return &store.FaultPolicy{
		Seed:                subSeed(s.cfg.Seed, fmt.Sprintf("crash-store-%d", idx)),
		DropUnsyncedOnCrash: true,
	}
}

// crashSyncEvery resolves the crashing peers' store-sync cadence.
func (s *scenario) crashSyncEvery() int {
	if n := s.cfg.Faults.CrashSyncEvery; n > 0 {
		return n
	}
	return 2
}

// cleanup releases the crash-family datadirs and store handles. It is
// idempotent; Run always calls it, as do newScenario's error paths.
func (s *scenario) cleanup() {
	for _, f := range s.crashFaults {
		_ = f.Close()
	}
	s.crashFaults = nil
	for _, dir := range s.crashDirs {
		_ = os.RemoveAll(dir)
	}
	s.crashDirs = nil
}

// churnEligible lists the node indexes churn may take down: everyone
// except the first miner of each kind (the population must keep mining
// on both draw paths) and the primary client (the measurement point and
// set submitter).
func (s *scenario) churnEligible() []int {
	keep := map[int]bool{}
	if len(s.semantic) > 0 {
		keep[0] = true
	}
	if len(s.baseline) > 0 {
		keep[len(s.semantic)] = true
	}
	keep[len(s.semantic)+len(s.baseline)] = true // primary client
	var out []int
	for i := range s.nodes {
		if !keep[i] {
			out = append(out, i)
		}
	}
	return out
}

// faultSchedule derives the chaos family's churn / partition / attack
// events. Churn instants come from a dedicated namespaced sub-RNG, so
// the fault schedule is reproducible and independent of every other
// randomness stream.
func (s *scenario) faultSchedule(buyStart, span uint64) []event {
	fp := s.cfg.Faults
	if !fp.Enabled() {
		return nil
	}
	var events []event
	if fp.ChurnPeers > 0 {
		churnRng := rand.New(rand.NewSource(subSeed(s.cfg.Seed, "churn")))
		eligible := s.churnEligible()
		churnRng.Shuffle(len(eligible), func(i, j int) {
			eligible[i], eligible[j] = eligible[j], eligible[i]
		})
		k := fp.ChurnPeers
		if k > len(eligible) {
			k = len(eligible)
		}
		down := fp.ChurnDownMs
		if down == 0 {
			down = 2 * s.cfg.BlockIntervalMs
		}
		for i := 0; i < k; i++ {
			at := buyStart + uint64(churnRng.Int63n(int64(span)))
			events = append(events,
				event{at: at, kind: evLeave, idx: eligible[i]},
				event{at: at + down, kind: evJoin, idx: eligible[i]})
		}
	}
	if len(s.crashIdxs) > 0 {
		// Crash instants draw from their own namespaced stream; the set
		// itself was chosen at construction (those peers carry the
		// fault-injected file stores).
		crashRng := rand.New(rand.NewSource(subSeed(s.cfg.Seed, "crash-times")))
		down := fp.CrashDownMs
		if down == 0 {
			down = 2 * s.cfg.BlockIntervalMs
		}
		for _, idx := range s.crashIdxs {
			at := buyStart + uint64(crashRng.Int63n(int64(span)))
			events = append(events,
				event{at: at, kind: evCrash, idx: idx},
				event{at: at + down, kind: evRestart, idx: idx})
		}
	}
	if fp.PartitionForMs > 0 {
		at := fp.PartitionAtMs
		if at == 0 {
			at = buyStart + span/4
		}
		events = append(events,
			event{at: at, kind: evPartition},
			event{at: at + fp.PartitionForMs, kind: evHeal})
	}
	if s.adv != nil {
		interval := fp.AttackIntervalMs
		if interval == 0 {
			interval = 2000
		}
		for at := buyStart + interval; at <= buyStart+span; at += interval {
			events = append(events, event{at: at, kind: evAttack})
		}
	}
	return events
}

// schedule builds the submission timeline. The opening set happens at
// t=0 (the market's opening price, §II-F) and the buys start after the
// first block so they never read the empty genesis state.
func (s *scenario) schedule() []event {
	var events []event
	buyStart := s.cfg.BlockIntervalMs
	span := uint64(s.cfg.Buys) * s.cfg.SubmitIntervalMs

	events = append(events, event{at: 0, kind: evSet, idx: -1}) // opening price
	if s.cfg.BurstSize > 1 {
		// Burst submission: one event per group of BurstSize buys, at
		// the instant the group's first buy would have gone out.
		for i := 0; i < s.cfg.Buys; i += s.cfg.BurstSize {
			events = append(events, event{at: buyStart + uint64(i)*s.cfg.SubmitIntervalMs, kind: evBurst, idx: i})
		}
	} else {
		for i := 0; i < s.cfg.Buys; i++ {
			events = append(events, event{at: buyStart + uint64(i)*s.cfg.SubmitIntervalMs, kind: evBuy, idx: i})
		}
	}
	for k := 0; k < s.cfg.Sets; k++ {
		at := buyStart + uint64(float64(k)*float64(span)/float64(s.cfg.Sets))
		events = append(events, event{at: at, kind: evSet, idx: k})
	}
	// Fault events ride the same unified timeline; the stable sort keeps
	// workload events ahead of same-instant fault events.
	events = append(events, s.faultSchedule(buyStart, span)...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	return events
}

// timeline merges the submission schedule with the self-rescheduling
// block source into ONE ordered event stream — the unified scheduler
// the population engine runs on. A block and a submission due at the
// same instant mine first (block production wins ties, matching the
// paper rig). After the submission window closes it keeps emitting up
// to maxDrain backlog-draining blocks, tagged so the run loop can stop
// once every pool is empty.
type timeline struct {
	subs    []event
	si      int
	blockAt uint64
	lastSub uint64
	meanGap uint64

	drained  int
	maxDrain int
	stopped  bool
}

// drainEvent marks blocks mined in the backlog-drain phase.
const drainIdx = -2

func (s *scenario) newTimeline() *timeline {
	subs := s.schedule()
	return &timeline{
		subs:     subs,
		blockAt:  s.nextBlockGap(),
		lastSub:  subs[len(subs)-1].at,
		meanGap:  s.cfg.BlockIntervalMs,
		maxDrain: s.cfg.DrainBlocks,
	}
}

// next yields the earliest pending event. Block events do NOT reschedule
// themselves here: the run loop calls blockMined afterwards, so the rng
// draw for the next gap happens after the mine draw — the exact stream
// order of the original two-timeline loop.
func (tl *timeline) next() (event, bool) {
	if tl.stopped {
		return event{}, false
	}
	if tl.si < len(tl.subs) || tl.blockAt <= tl.lastSub+tl.meanGap {
		nextSub := ^uint64(0)
		if tl.si < len(tl.subs) {
			nextSub = tl.subs[tl.si].at
		}
		if tl.blockAt <= nextSub {
			return event{at: tl.blockAt, kind: evBlock}, true
		}
		sub := tl.subs[tl.si]
		tl.si++
		return sub, true
	}
	if tl.drained >= tl.maxDrain {
		return event{}, false
	}
	tl.drained++
	return event{at: tl.blockAt, kind: evBlock, idx: drainIdx}, true
}

// blockMined reschedules the block source after a block was produced.
func (tl *timeline) blockMined(nextGap uint64) {
	tl.blockAt += nextGap
}

func (tl *timeline) stop() { tl.stopped = true }

// run drives the scenario: every submission, block and network delivery
// advances through the unified timeline's single clock.
func (s *scenario) run() (Result, error) {
	if s.rpc != nil {
		defer s.rpc.close()
	}
	tl := s.newTimeline()
	for {
		ev, ok := tl.next()
		if !ok {
			break
		}
		s.net.AdvanceTo(ev.at)
		if ev.kind == evBlock {
			if err := s.mine(ev.at); err != nil {
				return Result{}, err
			}
			tl.blockMined(s.nextBlockGap())
			s.checkResyncs(ev.at)
			if ev.idx == drainIdx && s.drainDone() {
				tl.stop()
			}
			continue
		}
		if err := s.dispatch(ev); err != nil {
			return Result{}, err
		}
		s.checkResyncs(ev.at)
	}
	s.net.Drain()
	s.checkResyncs(s.net.Now())
	return s.collect()
}

func (s *scenario) poolsEmpty() bool {
	for _, n := range s.nodes {
		if n.Pool().Len() != 0 {
			return false
		}
	}
	return true
}

// drainDone decides whether the backlog-drain phase may stop. Outside
// the chaos family it is the historical pools-empty check. Under faults
// it additionally requires every rejoined peer to have caught up and all
// online peers to share one head — a population whose pools are empty
// but whose chains still disagree (post-partition) must keep mining so
// the longest-chain rule can finish converging. DrainBlocks still bounds
// the phase either way.
func (s *scenario) drainDone() bool {
	if !s.poolsEmpty() {
		return false
	}
	if s.cfg.Faults.Enabled() {
		if len(s.resyncs) > 0 || !s.convergedNow() {
			return false
		}
	}
	return true
}

// convergedNow reports whether every online peer is on the primary
// client's exact head.
func (s *scenario) convergedNow() bool {
	c := s.clients[0].Chain()
	h := c.Height()
	for _, n := range s.nodes {
		if s.offline[n.ID()] {
			continue
		}
		nc := n.Chain()
		if nc.Height() != h {
			return false
		}
		if h > 0 && nc.BlockByNumber(h).Hash() != c.BlockByNumber(h).Hash() {
			return false
		}
	}
	return true
}

// nextBlockGap draws the time to the next block: exponential with the
// configured mean under PoissonBlocks (clamped to [mean/4, 4*mean]),
// fixed otherwise.
func (s *scenario) nextBlockGap() uint64 {
	if !s.cfg.PoissonBlocks {
		return s.cfg.BlockIntervalMs
	}
	mean := float64(s.cfg.BlockIntervalMs)
	gap := s.rng.ExpFloat64() * mean
	if gap < mean/4 {
		gap = mean / 4
	}
	if gap > mean*4 {
		gap = mean * 4
	}
	return uint64(gap)
}

// mine picks the block producer per the semantic participation fraction;
// with several miners of the chosen kind the producer is drawn uniformly
// (single-miner pools consume no extra randomness, keeping the paper
// rig's rng stream bit-identical).
func (s *scenario) mine(at uint64) error {
	// newScenario validates that the drawn kind always has miners:
	// fraction > 0 implies semantic miners exist, fraction < 1 implies
	// baseline miners exist (Float64() < 1 always holds at fraction 1).
	pool := s.baseline
	if s.cfg.SemanticFraction > 0 && s.rng.Float64() < s.cfg.SemanticFraction {
		pool = s.semantic
	}
	// Churned-out miners cannot produce. The filter (and the extra state
	// it implies) only engages while someone is offline, so fault-free
	// runs keep the historical producer-draw stream bit-identical.
	if len(s.offline) > 0 {
		online := make([]*node.Node, 0, len(pool))
		for _, n := range pool {
			if !s.offline[n.ID()] {
				online = append(online, n)
			}
		}
		if len(online) == 0 {
			return nil // every miner of the drawn kind is down: skip the slot
		}
		pool = online
	}
	producer := pool[0]
	if len(pool) > 1 {
		producer = pool[s.rng.Intn(len(pool))]
	}
	block, err := producer.MineAndBroadcast(at / 1000)
	if err != nil {
		return err
	}
	if block != nil {
		s.blocksMined++
	}
	return nil
}

func (s *scenario) dispatch(ev event) error {
	switch ev.kind {
	case evSet:
		return s.submitSet()
	case evBuy:
		return s.submitBuy(ev.idx)
	case evBurst:
		return s.submitBurst(ev.idx)
	case evLeave:
		s.doLeave(ev.idx)
		return nil
	case evJoin:
		s.doJoin(ev.at, ev.idx)
		return nil
	case evCrash:
		s.doCrash(ev.idx)
		return nil
	case evRestart:
		return s.doRestart(ev.at, ev.idx)
	case evPartition:
		s.doPartition()
		return nil
	case evHeal:
		s.net.ClearPartition()
		return nil
	case evAttack:
		s.adv.attack(ev.at)
		return nil
	default:
		return fmt.Errorf("sim: unknown event kind %d", ev.kind)
	}
}

// doLeave crashes a peer: it stops receiving deliveries and producing
// blocks until its evJoin fires.
func (s *scenario) doLeave(idx int) {
	n := s.nodes[idx]
	s.offline[n.ID()] = true
	s.net.Leave(n.ID())
}

// doJoin brings a churned peer back. Its sync bookkeeping is reset (the
// peers it had asked before crashing may be gone or stale) and a resync
// watch records how long the frontier catch-up takes to reach the
// height the online population held at the rejoin instant.
func (s *scenario) doJoin(at uint64, idx int) {
	n := s.nodes[idx]
	delete(s.offline, n.ID())
	n.ResetSyncState()
	s.net.Join(n.ID(), n)
	s.rejoins++
	target := uint64(0)
	for _, m := range s.nodes {
		if s.offline[m.ID()] {
			continue
		}
		if h := m.Chain().Height(); h > target {
			target = h
		}
	}
	if n.Chain().Height() >= target {
		s.resyncDone = append(s.resyncDone, 0)
		return
	}
	s.resyncs = append(s.resyncs, resyncWatch{idx: idx, joinAt: at, target: target})
}

// doCrash hard-kills a persisting peer: it leaves the network like a
// churned peer, but its store additionally loses the unsynced log tail
// at a seeded random byte and abandons the file handle without sync —
// the write that was in flight when the process died.
func (s *scenario) doCrash(idx int) {
	n := s.nodes[idx]
	s.offline[n.ID()] = true
	s.net.Leave(n.ID())
	if f := s.crashFaults[idx]; f != nil {
		f.Crash()
	}
	s.crashes++
}

// doRestart brings a crashed peer back from its datadir: the log is
// salvaged on open, the node rebuilds from the durable head (or genesis
// when the crash predated any durable head), rejoins the network, and a
// recovery watch measures how long it takes to catch back up. Salvage
// or recovery failures abort the run — they are exactly the
// crash-consistency invariant this family exists to check.
func (s *scenario) doRestart(at uint64, idx int) error {
	kv, err := store.OpenFile(s.crashDirs[idx])
	if err != nil {
		return fmt.Errorf("sim: crash restart %d: salvage failed: %w", idx, err)
	}
	rep := kv.Salvage()
	s.salvageTorn += uint64(rep.TornBytes)
	s.salvageQuar += uint64(rep.Quarantined)
	s.salvageFixed += uint64(rep.Corrected)
	fault := store.NewFault(kv, s.crashPolicy(idx))
	s.crashFaults[idx] = fault
	cfg := s.nodeCfgs[idx]
	cfg.Store = fault
	// Both per-restart: the exec cache must not replay pre-crash post
	// states whose dirty nodes went to the dead handle, and the genesis
	// fallback (a kill before any durable head) must commit in full.
	cfg.Chain.ExecCache = chain.NewExecCache(0)
	cfg.Genesis = s.freshGenesis()
	n, err := node.New(cfg)
	if err != nil {
		return fmt.Errorf("sim: crash restart %d: reopen failed: %w", idx, err)
	}
	if n.BootSource() == node.BootRecovered {
		s.recoveredBoots++
	}
	s.replaceNode(idx, n)
	delete(s.offline, n.ID())
	s.net.Join(n.ID(), n)
	s.crashRecoveries++
	target := uint64(0)
	for _, m := range s.nodes {
		if s.offline[m.ID()] {
			continue
		}
		if h := m.Chain().Height(); h > target {
			target = h
		}
	}
	if n.Chain().Height() >= target {
		s.crashRecoveryMs = append(s.crashRecoveryMs, 0)
		return nil
	}
	s.resyncs = append(s.resyncs, resyncWatch{idx: idx, joinAt: at, target: target, crash: true})
	return nil
}

// replaceNode swaps a rebuilt peer into the population, keeping the
// role slices (which mine() draws producers from) in step.
func (s *scenario) replaceNode(idx int, n *node.Node) {
	s.nodes[idx] = n
	switch {
	case idx < len(s.semantic):
		s.semantic[idx] = n
	case idx < len(s.semantic)+len(s.baseline):
		s.baseline[idx-len(s.semantic)] = n
	default:
		s.clients[idx-len(s.semantic)-len(s.baseline)] = n
	}
}

// doPartition cuts the population into two mining halves (peers
// alternate by index, so each side keeps at least one miner of each
// kind); the adversary, if any, rides with group 0.
func (s *scenario) doPartition() {
	var groups [2][]p2p.PeerID
	for i, n := range s.nodes {
		groups[i%2] = append(groups[i%2], n.ID())
	}
	if s.adv != nil {
		groups[0] = append(groups[0], s.advID)
	}
	s.net.SetPartition([][]p2p.PeerID{groups[0], groups[1]})
}

// checkResyncs resolves resync watches whose peer has caught up.
func (s *scenario) checkResyncs(at uint64) {
	if len(s.resyncs) == 0 {
		return
	}
	remaining := s.resyncs[:0]
	for _, w := range s.resyncs {
		if s.nodes[w.idx].Chain().Height() >= w.target {
			if w.crash {
				s.crashRecoveryMs = append(s.crashRecoveryMs, float64(at-w.joinAt))
			} else {
				s.resyncDone = append(s.resyncDone, float64(at-w.joinAt))
			}
			continue
		}
		remaining = append(remaining, w)
	}
	s.resyncs = remaining
}

// submitSet issues the owner's next price change through the primary
// client. The owner tracks its own mark chain locally (its transactions
// are sequentially consistent from its own thread, §II-C), so sets never
// need a remote view and all of them succeed — matching §V-A. Under
// GasPriceSpread the set bids above the buy band so overloaded pools do
// not evict the price authority.
func (s *scenario) submitSet() error {
	price := types.WordFromUint64(uint64(10 + s.rng.Intn(90)))
	committedMark, err := s.clientStorage(0, asm.SlotMark)
	if err != nil {
		return fmt.Errorf("read mark for set %d: %w", s.ownerSets, err)
	}
	flag := types.FlagChain
	if s.ownerMark == committedMark {
		flag = types.FlagHead
	}
	gasPrice := uint64(10)
	if s.cfg.GasPriceSpread > 0 {
		gasPrice = 10 + uint64(s.cfg.GasPriceSpread)
	}
	tx, err := s.submitSetVia(0, gasPrice, flag, s.ownerMark, price)
	if err != nil {
		if errors.Is(err, txpool.ErrPoolFull) {
			s.setsDropped++
			return nil
		}
		return fmt.Errorf("submit set %d: %w", s.ownerSets, err)
	}
	s.ownerNonce++
	s.ownerSets++
	s.ownerMark = types.NextMark(s.ownerMark, price)
	s.ownerValue = price
	s.setHashes[tx.Hash()] = true
	return nil
}

// buildBuy constructs buy i's signed transaction from its client's best
// view: committed storage on a Geth client, the RAA/HMS READ-UNCOMMITTED
// view on a Sereth client (buyers round-robin over the client peers; the
// sequential-history check uses the single sender's locally-tracked
// chain instead of a remote view). The sender's nonce is read but NOT
// consumed — callers commit it via commitBuy once the transaction is
// accepted, so a refused buy never gaps the sender's sequence.
func (s *scenario) buildBuy(i int) (clientIdx, buyerIdx int, tx *types.Transaction, err error) {
	buyerIdx = i % len(s.buyers)
	key := s.buyers[buyerIdx]
	clientIdx = buyerIdx % len(s.clients)
	if s.offline[s.clients[clientIdx].ID()] {
		// The buyer's usual client is churned out: fall back to the
		// primary client (which never churns), as a real buyer would
		// retry against another endpoint.
		clientIdx = 0
	}

	var flag, mark, value types.Word
	var nonce uint64
	if s.cfg.SingleSender {
		// Sequential-history check (§V): the single sender knows its own
		// chain — real-time order = nonce order = block order, so its
		// locally-tracked (mark, value) is always exact.
		flag, mark, value = types.FlagChain, s.ownerMark, s.ownerValue
		nonce = s.ownerNonce
	} else {
		flag, mark, value, err = s.clientView(clientIdx, key.Address())
		if err != nil {
			return clientIdx, buyerIdx, nil, err
		}
		nonce = s.buyerNonce[buyerIdx]
	}
	gasPrice := uint64(10)
	if s.cfg.GasPriceSpread > 0 {
		gasPrice += uint64(s.rng.Intn(s.cfg.GasPriceSpread))
	}
	return clientIdx, buyerIdx, key.SignTx(&types.Transaction{
		Nonce:    nonce,
		To:       s.contract,
		GasPrice: gasPrice,
		GasLimit: 300_000,
		Data:     types.EncodeCall(asm.SelBuy, flag, mark, value),
	}), nil
}

// commitBuy records an accepted buy: the sender's nonce is consumed and
// the transaction counted into the run's buy set.
func (s *scenario) commitBuy(buyerIdx int, tx *types.Transaction) {
	if s.cfg.SingleSender {
		s.ownerNonce++
	} else {
		s.buyerNonce[buyerIdx]++
	}
	s.buysSent++
	s.buyHashes[tx.Hash()] = true
	if s.censorAddrs[tx.From] {
		s.censoredSubmitted++
		s.censoredHashes[tx.Hash()] = true
	}
}

// submitBuy issues one buy through its client.
func (s *scenario) submitBuy(i int) error {
	clientIdx, buyerIdx, tx, err := s.buildBuy(i)
	if err != nil {
		return fmt.Errorf("build buy %d: %w", i, err)
	}
	if err := s.submitVia(clientIdx, tx); err != nil {
		// A refused buy never existed anywhere, so its nonce must NOT be
		// consumed — a burned nonce would gap the sender's sequence and
		// make every later buy from this buyer unminable.
		if errors.Is(err, txpool.ErrPoolFull) {
			s.buysDropped++
			return nil
		}
		return fmt.Errorf("submit buy %d: %w", i, err)
	}
	s.commitBuy(buyerIdx, tx)
	return nil
}

// submitBurst issues the buys [start, start+BurstSize) as batched
// submissions: every buy is built against its client's view at the
// burst instant (buys carry no sets, so the views a per-tx loop would
// have read are identical), then each client's group ships through
// SubmitTxs — one pool-admission batch and one batched gossip envelope
// per client. Nonce and gas-price draws follow the per-tx path's order
// exactly.
func (s *scenario) submitBurst(start int) error {
	end := start + s.cfg.BurstSize
	if end > s.cfg.Buys {
		end = s.cfg.Buys
	}
	groups := make([][]*types.Transaction, len(s.clients))
	for i := start; i < end; i++ {
		clientIdx, buyerIdx, tx, err := s.buildBuy(i)
		if err != nil {
			return fmt.Errorf("build buy %d: %w", i, err)
		}
		groups[clientIdx] = append(groups[clientIdx], tx)
		// The burst family runs on unbounded pools, so acceptance is
		// certain at build time and the nonce commits eagerly; a refusal
		// below aborts the run rather than un-counting.
		s.commitBuy(buyerIdx, tx)
	}
	for ci, txs := range groups {
		if len(txs) == 0 {
			continue
		}
		if err := s.clients[ci].SubmitTxs(txs); err != nil {
			// The burst family runs on unbounded pools; any refusal is a
			// configuration error, not backpressure to absorb.
			return fmt.Errorf("submit burst at %d: %w", start, err)
		}
	}
	return nil
}

// collect walks the primary client's chain and classifies every receipt.
func (s *scenario) collect() (Result, error) {
	res := Result{
		Config:        s.cfg,
		BuysSubmitted: s.buysSent,
		BuysDropped:   s.buysDropped,
		SetsSubmitted: s.ownerSets,
		SetsDropped:   s.setsDropped,
	}
	res.MsgsSent, res.MsgsDropped = s.net.Stats()
	for _, n := range s.nodes {
		res.Evicted += n.Pool().Evicted()
	}
	c := s.clients[0].Chain()
	res.Blocks = int(c.Height())
	var lastTime uint64
	for n := uint64(1); n <= c.Height(); n++ {
		block := c.BlockByNumber(n)
		lastTime = block.Header.Time
		if s.forgedBlocks[block.Hash()] {
			res.ForgedBlocksAccepted++
		}
		for _, receipt := range c.Receipts(block.Hash()) {
			succeeded := receipt.Status == types.StatusSucceeded
			if s.censoredHashes[receipt.TxHash] {
				res.CensoredIncluded++
			}
			if s.attackTxs[receipt.TxHash] {
				res.AttackTxsIncluded++
				if succeeded {
					res.AttackTxsSucceeded++
				}
			}
			switch {
			case s.buyHashes[receipt.TxHash]:
				res.BuysIncluded++
				if succeeded {
					res.BuysSucceeded++
				}
			case s.setHashes[receipt.TxHash]:
				res.SetsIncluded++
				if succeeded {
					res.SetsSucceeded++
				}
			}
		}
	}
	res.DurationS = float64(lastTime)
	s.collectChaos(&res)
	return res, nil
}

// collectChaos fills the robustness metrics. It runs for every scenario
// (convergence is a universal invariant) but the fault counters are
// only non-zero when the fault layer was active.
func (s *scenario) collectChaos(res *Result) {
	res.BlocksMined = s.blocksMined
	if res.BlocksMined > res.Blocks {
		res.BlocksOrphaned = res.BlocksMined - res.Blocks
	}
	res.Rejoins = s.rejoins
	res.ResyncMs = s.resyncDone
	res.ResyncIncomplete = len(s.resyncs)
	res.Crashes = s.crashes
	res.CrashRecoveries = s.crashRecoveries
	res.RecoveredBoots = s.recoveredBoots
	res.CrashRecoveryMs = s.crashRecoveryMs
	res.SalvageTornBytes = s.salvageTorn
	res.SalvageQuarantined = s.salvageQuar
	res.SalvageCorrected = s.salvageFixed
	res.CensoredSubmitted = s.censoredSubmitted
	for _, n := range s.nodes {
		res.TxsCensored += n.CensorExcluded()
	}
	fs := s.net.FaultStats()
	res.PartitionBlocked = fs.PartitionBlocked
	res.LinkDropped = fs.LinkDropped
	res.LinkDuplicated = fs.Duplicated
	res.LinkReordered = fs.Reordered
	if s.adv != nil {
		st := s.adv.stats()
		res.AttackTxsSent = st.TxsSent
		res.ForgedBlocksSent = st.BlocksSent
	}
	res.Converged = s.convergedNow()
}
