package sim

import (
	"fmt"
	"sort"
	"strings"

	"sereth/internal/metrics"
)

// SweepPoint is one (scenario, ratio) cell of an experiment sweep,
// aggregated over seeds.
type SweepPoint struct {
	Scenario string
	Sets     int
	Ratio    float64 // buys per set
	Eta      metrics.Summary
	StateTps metrics.Summary
}

// Figure2Scenarios are the three lines of the paper's Figure 2.
var Figure2Scenarios = []struct {
	Name string
	Make func(sets int, seed int64) ScenarioConfig
}{
	{"geth_unmodified", GethUnmodified},
	{"sereth_client", SerethClient},
	{"semantic_mining", SemanticMining},
}

// Figure2SetCounts are the set counts of the paper's sweep: 100 buys
// against 100 down to 5 sets (ratios 1:1 to 20:1).
var Figure2SetCounts = []int{100, 50, 33, 25, 20, 10, 6, 5}

// RunFigure2 sweeps the three scenarios over the given set counts and
// seeds, returning one point per (scenario, sets). A nil progress
// callback is allowed.
func RunFigure2(setCounts []int, seeds []int64, progress func(string)) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, sets := range setCounts {
		for _, sc := range Figure2Scenarios {
			var etas, tps []float64
			for _, seed := range seeds {
				res, err := Run(sc.Make(sets, seed))
				if err != nil {
					return nil, fmt.Errorf("%s sets=%d seed=%d: %w", sc.Name, sets, seed, err)
				}
				etas = append(etas, res.Efficiency())
				tps = append(tps, res.StateTps())
			}
			p := SweepPoint{
				Scenario: sc.Name,
				Sets:     sets,
				Ratio:    float64(100) / float64(sets),
				Eta:      metrics.Summarize(etas),
				StateTps: metrics.Summarize(tps),
			}
			points = append(points, p)
			if progress != nil {
				progress(fmt.Sprintf("%-16s sets=%3d ratio=%5.1f  η=%.3f ±%.3f",
					p.Scenario, p.Sets, p.Ratio, p.Eta.Mean, p.Eta.CI90))
			}
		}
	}
	return points, nil
}

// FormatSweep renders sweep points as an aligned table, grouped by
// scenario and ordered by ratio — the textual form of Figure 2.
func FormatSweep(points []SweepPoint) string {
	byScenario := make(map[string][]SweepPoint)
	var order []string
	for _, p := range points {
		if _, ok := byScenario[p.Scenario]; !ok {
			order = append(order, p.Scenario)
		}
		byScenario[p.Scenario] = append(byScenario[p.Scenario], p)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %6s %10s %10s %12s\n",
		"scenario", "ratio", "sets", "eta_mean", "eta_ci90", "state_tps")
	for _, name := range order {
		ps := byScenario[name]
		sort.Slice(ps, func(i, j int) bool { return ps[i].Ratio < ps[j].Ratio })
		for _, p := range ps {
			fmt.Fprintf(&b, "%-18s %7.1f:1 %6d %10.4f %10.4f %12.4f\n",
				p.Scenario, p.Ratio, p.Sets, p.Eta.Mean, p.Eta.CI90, p.StateTps.Mean)
		}
	}
	return b.String()
}

// SequentialHistory runs the §V single-sender check: with one address,
// real-time order = nonce order = block order, so η must be exactly 1.
// A plain geth client suffices — no remote views are needed when the
// sender knows its own history.
func SequentialHistory(seed int64) (Result, error) {
	cfg := Defaults()
	cfg.Name = "sequential_history"
	cfg.Seed = seed
	cfg.Sets = 20
	cfg.SingleSender = true
	return Run(cfg)
}

// ParticipationPoint is one cell of the miner-participation ablation.
type ParticipationPoint struct {
	Fraction float64
	Eta      metrics.Summary
}

// RunParticipation sweeps the fraction of semantic miners (§V-C: "if
// only a fraction of the miners were assisting... there would still be
// benefits proportional to the participation").
func RunParticipation(fractions []float64, seeds []int64, sets int) ([]ParticipationPoint, error) {
	var out []ParticipationPoint
	for _, f := range fractions {
		var etas []float64
		for _, seed := range seeds {
			cfg := SemanticMining(sets, seed)
			cfg.Name = fmt.Sprintf("participation_%.2f", f)
			cfg.SemanticFraction = f
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			etas = append(etas, res.Efficiency())
		}
		out = append(out, ParticipationPoint{Fraction: f, Eta: metrics.Summarize(etas)})
	}
	return out, nil
}

// GossipPoint is one cell of the TxPool-propagation ablation.
type GossipPoint struct {
	LatencyMs uint64
	Eta       metrics.Summary
}

// RunGossip sweeps the gossip latency for the sereth_client scenario
// (§V-C: "if communication of the TxPool were impeded among the Sereth
// enabled peers... performance would be degraded").
func RunGossip(latenciesMs []uint64, seeds []int64, sets int) ([]GossipPoint, error) {
	var out []GossipPoint
	for _, lat := range latenciesMs {
		var etas []float64
		for _, seed := range seeds {
			cfg := SerethClient(sets, seed)
			cfg.Name = fmt.Sprintf("gossip_%dms", lat)
			cfg.GossipLatencyMs = lat
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			etas = append(etas, res.Efficiency())
		}
		out = append(out, GossipPoint{LatencyMs: lat, Eta: metrics.Summarize(etas)})
	}
	return out, nil
}

// IntervalPoint is one cell of the submit-interval sensitivity ablation.
type IntervalPoint struct {
	IntervalMs uint64
	Eta        metrics.Summary
}

// RunInterval sweeps the submission interval at a high buy:set ratio
// (§V-A: "with few state changes transaction efficiency becomes more
// sensitive to the transaction interval").
func RunInterval(intervalsMs []uint64, seeds []int64, sets int) ([]IntervalPoint, error) {
	var out []IntervalPoint
	for _, iv := range intervalsMs {
		var etas []float64
		for _, seed := range seeds {
			cfg := GethUnmodified(sets, seed)
			cfg.Name = fmt.Sprintf("interval_%dms", iv)
			cfg.SubmitIntervalMs = iv
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			etas = append(etas, res.Efficiency())
		}
		out = append(out, IntervalPoint{IntervalMs: iv, Eta: metrics.Summarize(etas)})
	}
	return out, nil
}

// ExtendHeadsPoint is one cell of the orphan-recovery ablation.
type ExtendHeadsPoint struct {
	Extended bool
	Eta      metrics.Summary
}

// RunExtendHeads compares semantic mining with and without the HMS
// head-extension that recovers post-publish orphans (the paper's
// "efficiency could approach 100 percent if HMS were extended", §V-C).
func RunExtendHeads(seeds []int64, sets int) ([]ExtendHeadsPoint, error) {
	var out []ExtendHeadsPoint
	for _, ext := range []bool{false, true} {
		var etas []float64
		for _, seed := range seeds {
			cfg := SemanticMining(sets, seed)
			cfg.Name = fmt.Sprintf("extendheads_%v", ext)
			cfg.ExtendHeads = ext
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			etas = append(etas, res.Efficiency())
		}
		out = append(out, ExtendHeadsPoint{Extended: ext, Eta: metrics.Summarize(etas)})
	}
	return out, nil
}

// DefaultSeeds returns n deterministic experiment seeds.
func DefaultSeeds(n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i+1) * 101
	}
	return seeds
}
