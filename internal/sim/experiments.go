package sim

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"sereth/internal/metrics"
)

// Shape overrides a sweep's population and network geometry — the
// -peers/-clients/-topology knobs of serethsim. Zero fields leave the
// scenario's own configuration untouched.
type Shape struct {
	SemanticMiners int
	BaselineMiners int
	Clients        int
	Topology       string
	Degree         int
	// LazyClients switches the client peers to lazy validation
	// (serethsim -lazy-clients): required for 1000-peer sweeps.
	LazyClients bool
	// ParallelExec routes block execution through the optimistic
	// parallel processor (serethsim -parallel). η is bit-identical
	// either way; the flag exists to exercise the parallel path across
	// every sweep.
	ParallelExec bool
	// RPCClients publishes client peers behind real HTTP JSON-RPC
	// endpoints (serethsim -rpc-clients). η is bit-identical either
	// way; the flag exists to exercise the serving tier across sweeps.
	RPCClients bool
	// Persist backs every node's chain with an in-memory store
	// (serethsim -persist), flushing state and blocks write-through at
	// each adoption. η is bit-identical either way.
	Persist bool
}

// Apply returns cfg with the non-zero shape fields overridden.
func (sh Shape) Apply(cfg ScenarioConfig) ScenarioConfig {
	if sh.SemanticMiners > 0 {
		cfg.SemanticMiners = sh.SemanticMiners
	}
	if sh.BaselineMiners > 0 {
		cfg.BaselineMiners = sh.BaselineMiners
	}
	if sh.Clients > 0 {
		cfg.Clients = sh.Clients
	}
	if sh.Topology != "" {
		cfg.Topology = sh.Topology
	}
	if sh.Degree > 0 {
		cfg.Degree = sh.Degree
	}
	if sh.LazyClients {
		cfg.LazyClients = true
	}
	if sh.ParallelExec {
		cfg.ParallelExec = true
	}
	if sh.RPCClients {
		cfg.RPCClients = true
	}
	if sh.Persist {
		cfg.Persist = true
	}
	return cfg
}

// shapeOf folds an optional trailing Shape argument.
func shapeOf(shape []Shape) Shape {
	if len(shape) == 0 {
		return Shape{}
	}
	return shape[0]
}

// runSeeds executes one run per seed on a bounded worker pool. Seeded
// runs are independent and fully deterministic, so parallelism changes
// wall time only — results come back in seed order and every aggregate
// is identical to the sequential sweep. The first error wins.
func runSeeds(seeds []int64, mk func(seed int64) ScenarioConfig) ([]Result, error) {
	results := make([]Result, len(seeds))
	errs := make([]error, len(seeds))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	if workers <= 1 {
		for i, seed := range seeds {
			results[i], errs[i] = Run(mk(seed))
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					results[i], errs[i] = Run(mk(seeds[i]))
				}
			}()
		}
		for i := range seeds {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seeds[i], err)
		}
	}
	return results, nil
}

// SweepPoint is one (scenario, ratio) cell of an experiment sweep,
// aggregated over seeds.
type SweepPoint struct {
	Scenario string
	Sets     int
	Ratio    float64 // buys per set
	Eta      metrics.Summary
	StateTps metrics.Summary
}

// Figure2Scenarios are the three lines of the paper's Figure 2.
var Figure2Scenarios = []struct {
	Name string
	Make func(sets int, seed int64) ScenarioConfig
}{
	{"geth_unmodified", GethUnmodified},
	{"sereth_client", SerethClient},
	{"semantic_mining", SemanticMining},
}

// Figure2SetCounts are the set counts of the paper's sweep: 100 buys
// against 100 down to 5 sets (ratios 1:1 to 20:1).
var Figure2SetCounts = []int{100, 50, 33, 25, 20, 10, 6, 5}

// RunFigure2 sweeps the three scenarios over the given set counts and
// seeds, returning one point per (scenario, sets). Seeds within a cell
// run in parallel. A nil progress callback is allowed; an optional
// Shape reconfigures the peer population.
func RunFigure2(setCounts []int, seeds []int64, progress func(string), shape ...Shape) ([]SweepPoint, error) {
	sh := shapeOf(shape)
	var points []SweepPoint
	for _, sets := range setCounts {
		for _, sc := range Figure2Scenarios {
			sets, mk := sets, sc.Make
			results, err := runSeeds(seeds, func(seed int64) ScenarioConfig {
				return sh.Apply(mk(sets, seed))
			})
			if err != nil {
				return nil, fmt.Errorf("%s sets=%d: %w", sc.Name, sets, err)
			}
			var etas, tps []float64
			for _, res := range results {
				etas = append(etas, res.Efficiency())
				tps = append(tps, res.StateTps())
			}
			p := SweepPoint{
				Scenario: sc.Name,
				Sets:     sets,
				Ratio:    float64(100) / float64(sets),
				Eta:      metrics.Summarize(etas),
				StateTps: metrics.Summarize(tps),
			}
			points = append(points, p)
			if progress != nil {
				progress(fmt.Sprintf("%-16s sets=%3d ratio=%5.1f  η=%.3f ±%.3f",
					p.Scenario, p.Sets, p.Ratio, p.Eta.Mean, p.Eta.CI90))
			}
		}
	}
	return points, nil
}

// FormatSweep renders sweep points as an aligned table, grouped by
// scenario and ordered by ratio — the textual form of Figure 2.
func FormatSweep(points []SweepPoint) string {
	byScenario := make(map[string][]SweepPoint)
	var order []string
	for _, p := range points {
		if _, ok := byScenario[p.Scenario]; !ok {
			order = append(order, p.Scenario)
		}
		byScenario[p.Scenario] = append(byScenario[p.Scenario], p)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %6s %10s %10s %12s\n",
		"scenario", "ratio", "sets", "eta_mean", "eta_ci90", "state_tps")
	for _, name := range order {
		ps := byScenario[name]
		sort.Slice(ps, func(i, j int) bool { return ps[i].Ratio < ps[j].Ratio })
		for _, p := range ps {
			fmt.Fprintf(&b, "%-18s %7.1f:1 %6d %10.4f %10.4f %12.4f\n",
				p.Scenario, p.Ratio, p.Sets, p.Eta.Mean, p.Eta.CI90, p.StateTps.Mean)
		}
	}
	return b.String()
}

// SequentialHistoryConfig is the §V single-sender check configuration:
// with one address, real-time order = nonce order = block order, so η
// must be exactly 1. A plain geth client suffices — no remote views are
// needed when the sender knows its own history.
func SequentialHistoryConfig(seed int64) ScenarioConfig {
	cfg := Defaults()
	cfg.Name = "sequential_history"
	cfg.Seed = seed
	cfg.Sets = 20
	cfg.SingleSender = true
	return cfg
}

// SequentialHistory runs the §V single-sender check.
func SequentialHistory(seed int64) (Result, error) {
	return Run(SequentialHistoryConfig(seed))
}

// ParticipationPoint is one cell of the miner-participation ablation.
type ParticipationPoint struct {
	Fraction float64
	Eta      metrics.Summary
}

// RunParticipation sweeps the fraction of semantic miners (§V-C: "if
// only a fraction of the miners were assisting... there would still be
// benefits proportional to the participation").
func RunParticipation(fractions []float64, seeds []int64, sets int, shape ...Shape) ([]ParticipationPoint, error) {
	sh := shapeOf(shape)
	var out []ParticipationPoint
	for _, f := range fractions {
		f := f
		results, err := runSeeds(seeds, func(seed int64) ScenarioConfig {
			cfg := SemanticMining(sets, seed)
			cfg.Name = fmt.Sprintf("participation_%.2f", f)
			cfg.SemanticFraction = f
			return sh.Apply(cfg)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ParticipationPoint{Fraction: f, Eta: summarizeEtas(results)})
	}
	return out, nil
}

// GossipPoint is one cell of the TxPool-propagation ablation.
type GossipPoint struct {
	LatencyMs uint64
	Eta       metrics.Summary
}

// RunGossip sweeps the gossip latency for the sereth_client scenario
// (§V-C: "if communication of the TxPool were impeded among the Sereth
// enabled peers... performance would be degraded").
func RunGossip(latenciesMs []uint64, seeds []int64, sets int, shape ...Shape) ([]GossipPoint, error) {
	sh := shapeOf(shape)
	var out []GossipPoint
	for _, lat := range latenciesMs {
		lat := lat
		results, err := runSeeds(seeds, func(seed int64) ScenarioConfig {
			cfg := SerethClient(sets, seed)
			cfg.Name = fmt.Sprintf("gossip_%dms", lat)
			cfg.GossipLatencyMs = lat
			return sh.Apply(cfg)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, GossipPoint{LatencyMs: lat, Eta: summarizeEtas(results)})
	}
	return out, nil
}

// IntervalPoint is one cell of the submit-interval sensitivity ablation.
type IntervalPoint struct {
	IntervalMs uint64
	Eta        metrics.Summary
}

// RunInterval sweeps the submission interval at a high buy:set ratio
// (§V-A: "with few state changes transaction efficiency becomes more
// sensitive to the transaction interval").
func RunInterval(intervalsMs []uint64, seeds []int64, sets int, shape ...Shape) ([]IntervalPoint, error) {
	sh := shapeOf(shape)
	var out []IntervalPoint
	for _, iv := range intervalsMs {
		iv := iv
		results, err := runSeeds(seeds, func(seed int64) ScenarioConfig {
			cfg := GethUnmodified(sets, seed)
			cfg.Name = fmt.Sprintf("interval_%dms", iv)
			cfg.SubmitIntervalMs = iv
			return sh.Apply(cfg)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, IntervalPoint{IntervalMs: iv, Eta: summarizeEtas(results)})
	}
	return out, nil
}

// ExtendHeadsPoint is one cell of the orphan-recovery ablation.
type ExtendHeadsPoint struct {
	Extended bool
	Eta      metrics.Summary
}

// RunExtendHeads compares semantic mining with and without the HMS
// head-extension that recovers post-publish orphans (the paper's
// "efficiency could approach 100 percent if HMS were extended", §V-C).
func RunExtendHeads(seeds []int64, sets int, shape ...Shape) ([]ExtendHeadsPoint, error) {
	sh := shapeOf(shape)
	var out []ExtendHeadsPoint
	for _, ext := range []bool{false, true} {
		ext := ext
		results, err := runSeeds(seeds, func(seed int64) ScenarioConfig {
			cfg := SemanticMining(sets, seed)
			cfg.Name = fmt.Sprintf("extendheads_%v", ext)
			cfg.ExtendHeads = ext
			return sh.Apply(cfg)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ExtendHeadsPoint{Extended: ext, Eta: summarizeEtas(results)})
	}
	return out, nil
}

// OverloadPoint is one cell of the sustained-overload sweep.
type OverloadPoint struct {
	IntervalMs uint64
	Eta        metrics.Summary
	// LostFrac is the share of attempted buys that never made it into
	// a block: refused by the client's full pool, displaced by
	// eviction, or still pending when the drain window closed.
	LostFrac  metrics.Summary
	Evictions metrics.Summary
}

// RunOverload sweeps the submission interval below block capacity with
// bounded evict-lowest mempools: the mempool-eviction scenario family
// (arrival rate > block capacity, sustained).
func RunOverload(intervalsMs []uint64, seeds []int64, shape ...Shape) ([]OverloadPoint, error) {
	sh := shapeOf(shape)
	var out []OverloadPoint
	for _, iv := range intervalsMs {
		iv := iv
		results, err := runSeeds(seeds, func(seed int64) ScenarioConfig {
			cfg := Overload(seed)
			cfg.Name = fmt.Sprintf("overload_%dms", iv)
			cfg.SubmitIntervalMs = iv
			return sh.Apply(cfg)
		})
		if err != nil {
			return nil, err
		}
		var etas, lost, evictions []float64
		for _, res := range results {
			etas = append(etas, res.Efficiency())
			attempted := res.BuysSubmitted + res.BuysDropped
			if attempted > 0 {
				lost = append(lost, float64(attempted-res.BuysIncluded)/float64(attempted))
			}
			evictions = append(evictions, float64(res.Evicted))
		}
		out = append(out, OverloadPoint{
			IntervalMs: iv,
			Eta:        metrics.Summarize(etas),
			LostFrac:   metrics.Summarize(lost),
			Evictions:  metrics.Summarize(evictions),
		})
	}
	return out, nil
}

// BurstPoint is one cell of the burst-submission sweep.
type BurstPoint struct {
	BurstSize int
	Eta       metrics.Summary
	// Msgs is the network delivery count per run: the direct readout of
	// what batched envelopes save over per-tx gossip.
	Msgs metrics.Summary
}

// RunBurst sweeps the submission burst size for the batched-gossip
// scenario family. Size 1 is the per-tx baseline (identical schedule to
// sereth_client); larger bursts trade view freshness within a burst
// window for one shared admission batch and gossip envelope per client
// per burst.
func RunBurst(burstSizes []int, seeds []int64, shape ...Shape) ([]BurstPoint, error) {
	sh := shapeOf(shape)
	var out []BurstPoint
	for _, size := range burstSizes {
		size := size
		results, err := runSeeds(seeds, func(seed int64) ScenarioConfig {
			cfg := Burst(seed)
			cfg.Name = fmt.Sprintf("burst_%d", size)
			cfg.BurstSize = size
			return sh.Apply(cfg)
		})
		if err != nil {
			return nil, err
		}
		var msgs []float64
		for _, res := range results {
			msgs = append(msgs, float64(res.MsgsSent))
		}
		out = append(out, BurstPoint{
			BurstSize: size,
			Eta:       summarizeEtas(results),
			Msgs:      metrics.Summarize(msgs),
		})
	}
	return out, nil
}

func summarizeEtas(results []Result) metrics.Summary {
	etas := make([]float64, 0, len(results))
	for _, res := range results {
		etas = append(etas, res.Efficiency())
	}
	return metrics.Summarize(etas)
}

// DefaultSeeds returns n deterministic experiment seeds.
func DefaultSeeds(n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i+1) * 101
	}
	return seeds
}
