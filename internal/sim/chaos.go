package sim

import (
	"encoding/binary"
	"fmt"

	"sereth/internal/metrics"
	"sereth/internal/node"
	"sereth/internal/p2p"
	"sereth/internal/types"
)

// subSeed derives a namespaced sub-seed from the scenario seed. Every
// new randomness source the fault layer introduces (link faults, churn
// times, adversary choices) draws from its own stream keyed this way, so
// fault randomness never perturbs the pre-existing streams — with all
// faults disabled, the golden-seed scenarios stay bit-identical.
func subSeed(seed int64, namespace string) int64 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	h := types.Keccak([]byte("sereth-subseed:"+namespace), b[:])
	return int64(binary.BigEndian.Uint64(h[:8]))
}

// Adversary selectors for FaultPlan.Adversary.
const (
	// AdversaryCensor makes the first CensorMiners miners exclude every
	// transaction from the first CensorTargets buyer accounts.
	AdversaryCensor = "censor"
	// AdversaryForger joins an attacker peer that gossips tampered
	// replays, unknown-signer mark-collision buys, and forged blocks —
	// all of which honest peers must reject at admission and import.
	AdversaryForger = "forger"
	// AdversaryFrontrun joins an attacker peer that captures gossiped
	// offers and replays stale ones from its own funded identity at a
	// gas-price premium (the §V-B lost-update attack as a live actor).
	AdversaryFrontrun = "frontrun"
)

// FaultPlan configures the scenario-level fault schedule. The zero value
// disables the fault layer entirely (the bit-identical honest path).
type FaultPlan struct {
	// ChurnPeers peers (never the first miner of each kind or the
	// primary client) leave the network at a seeded random instant in
	// the submission window and rejoin ChurnDownMs later, resyncing via
	// the frontier catch-up.
	ChurnPeers  int
	ChurnDownMs uint64 // outage length; 0 = two block intervals

	// PartitionForMs > 0 cuts the network into two groups (peers
	// alternating by index) at PartitionAtMs (0 = a quarter into the
	// submission window) and heals PartitionForMs later. Both groups
	// keep mining, so the heal exercises longest-chain reorg
	// convergence.
	PartitionAtMs  uint64
	PartitionForMs uint64

	// Per-link fault knobs, applied to every link (p2p.LinkPolicy).
	LinkLossRate       float64
	LinkJitterMs       uint64
	LinkDupRate        float64
	LinkReorderRate    float64
	LinkReorderDelayMs uint64
	LinkExtraLatencyMs uint64

	// CrashPeers peers (drawn from the churn-eligible set) are backed by
	// fault-injected file stores and hard-killed at a seeded random
	// instant in the submission window: their unsynced log tail is cut at
	// a random byte and the handle abandoned without sync — a process
	// kill mid-commit. CrashDownMs later the peer restarts from its
	// datadir: the log salvages, chain.Open lands on a durable verified
	// head, and the peer resyncs the rest over gossip.
	CrashPeers  int
	CrashDownMs uint64 // outage length; 0 = two block intervals
	// CrashSyncEvery is the crashing peers' store-sync cadence in blocks
	// (chain.Config.SyncEvery); 0 = every 2 blocks.
	CrashSyncEvery int

	// Adversary selects an attacker ("", censor, forger, frontrun).
	Adversary string
	// CensorMiners is how many miners censor (0 = all); CensorTargets is
	// how many buyer accounts they target (0 = a quarter, at least one).
	CensorMiners  int
	CensorTargets int
	// AttackIntervalMs paces forger/frontrunner attack events
	// (0 = 2000ms).
	AttackIntervalMs uint64
}

// Enabled reports whether any fault is configured.
func (f FaultPlan) Enabled() bool { return f != FaultPlan{} }

// linkPolicy converts the plan's link knobs into the p2p form.
func (f FaultPlan) linkPolicy() p2p.LinkPolicy {
	return p2p.LinkPolicy{
		ExtraLatencyMs: f.LinkExtraLatencyMs,
		JitterMs:       f.LinkJitterMs,
		DropRate:       f.LinkLossRate,
		DuplicateRate:  f.LinkDupRate,
		ReorderRate:    f.LinkReorderRate,
		ReorderDelayMs: f.LinkReorderDelayMs,
	}
}

// Chaos returns the base configuration of the chaos family: the
// sereth_client workload on a 7-peer mixed population with both miner
// kinds active, leaving room for churn and two-sided partitions.
// Variants toggle individual faults on top.
func Chaos(seed int64) ScenarioConfig {
	cfg := Defaults()
	cfg.Name = "chaos"
	cfg.Seed = seed
	cfg.Sets = 20
	cfg.ClientMode = node.ModeSereth
	cfg.SemanticMiners = 2
	cfg.BaselineMiners = 2
	cfg.Clients = 3
	cfg.SemanticFraction = 0.5
	cfg.DrainBlocks = 60
	return cfg
}

// ChaosChurn: two peers crash mid-run and rejoin after ~2 block
// intervals, measuring resync latency via the frontier catch-up.
func ChaosChurn(seed int64) ScenarioConfig {
	cfg := Chaos(seed)
	cfg.Name = "chaos_churn"
	cfg.Faults = FaultPlan{ChurnPeers: 2, ChurnDownMs: 30_000}
	return cfg
}

// ChaosPartition: the network splits into two mining halves for three
// block intervals, then heals and must reorg-converge.
func ChaosPartition(seed int64) ScenarioConfig {
	cfg := Chaos(seed)
	cfg.Name = "chaos_partition"
	cfg.Faults = FaultPlan{PartitionAtMs: 40_000, PartitionForMs: 45_000}
	return cfg
}

// ChaosLoss: every link drops 10% of gossip, jitters deliveries, and
// occasionally duplicates or reorders them.
func ChaosLoss(seed int64) ScenarioConfig {
	cfg := Chaos(seed)
	cfg.Name = "chaos_loss"
	cfg.Faults = FaultPlan{
		LinkLossRate:       0.10,
		LinkJitterMs:       200,
		LinkDupRate:        0.02,
		LinkReorderRate:    0.05,
		LinkReorderDelayMs: 500,
	}
	return cfg
}

// ChaosCensor: every miner excludes the targeted buyer accounts.
func ChaosCensor(seed int64) ScenarioConfig {
	cfg := Chaos(seed)
	cfg.Name = "chaos_censor"
	cfg.Faults = FaultPlan{Adversary: AdversaryCensor}
	return cfg
}

// ChaosForger: an attacker peer gossips tampered replays, unknown-signer
// mark collisions, and forged blocks.
func ChaosForger(seed int64) ScenarioConfig {
	cfg := Chaos(seed)
	cfg.Name = "chaos_forger"
	cfg.Faults = FaultPlan{Adversary: AdversaryForger, AttackIntervalMs: 3000}
	return cfg
}

// ChaosFrontrun: an attacker peer replays captured stale offers at a
// gas-price premium.
func ChaosFrontrun(seed int64) ScenarioConfig {
	cfg := Chaos(seed)
	cfg.Name = "chaos_frontrun"
	cfg.Faults = FaultPlan{Adversary: AdversaryFrontrun, AttackIntervalMs: 4000}
	return cfg
}

// ChaosCombined: churn, a partition, and lossy links at once.
func ChaosCombined(seed int64) ScenarioConfig {
	cfg := Chaos(seed)
	cfg.Name = "chaos_combined"
	cfg.Faults = FaultPlan{
		ChurnPeers:     1,
		ChurnDownMs:    30_000,
		PartitionAtMs:  50_000,
		PartitionForMs: 30_000,
		LinkLossRate:   0.05,
		LinkJitterMs:   100,
	}
	return cfg
}

// ChaosVariants enumerates the chaos scenario family (the BENCH chaos/
// rows run one per variant).
var ChaosVariants = []struct {
	Name string
	Make func(seed int64) ScenarioConfig
}{
	{"chaos_churn", ChaosChurn},
	{"chaos_partition", ChaosPartition},
	{"chaos_loss", ChaosLoss},
	{"chaos_censor", ChaosCensor},
	{"chaos_forger", ChaosForger},
	{"chaos_frontrun", ChaosFrontrun},
	{"chaos_combined", ChaosCombined},
}

// ChaosPoint is one chaos variant aggregated over seeds, always paired
// with its honest twin (the same configuration with faults disabled, at
// the same seeds) so degradation is measured, not asserted.
type ChaosPoint struct {
	Variant   string
	Eta       metrics.Summary // η under faults/attack
	HonestEta metrics.Summary // η with faults disabled, same seeds
	EtaDrop   float64         // honest mean − faulty mean
	Included  metrics.Summary // buys included under faults
	Orphaned  metrics.Summary // blocks orphaned by reorgs per run
	Censored  metrics.Summary // targeted buys denied inclusion per run
	// Resync latency percentiles, pooled across every rejoin in every
	// run; zero when the variant has no churn.
	ResyncP50Ms      float64
	ResyncP90Ms      float64
	Rejoins          int
	ResyncIncomplete int
	// Converged reports whether every run ended with all online peers on
	// one head.
	Converged bool
	// Attack accounting (forger/frontrunner variants).
	AttackSent      int
	AttackIncluded  int
	AttackSucceeded int
	ForgedAccepted  int // must stay 0: forged blocks never enter a chain
}

// RunChaos sweeps the chaos variants (all of them when names is empty)
// over the given seeds. Each variant also runs its honest twin — same
// configuration and seeds, faults zeroed — so every point reports η
// degradation against the matched baseline.
func RunChaos(names []string, seeds []int64, progress func(string), shape ...Shape) ([]ChaosPoint, error) {
	sh := shapeOf(shape)
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var points []ChaosPoint
	for _, v := range ChaosVariants {
		if len(want) > 0 && !want[v.Name] {
			continue
		}
		mk := v.Make
		faulty, err := runSeeds(seeds, func(seed int64) ScenarioConfig {
			return sh.Apply(mk(seed))
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.Name, err)
		}
		honest, err := runSeeds(seeds, func(seed int64) ScenarioConfig {
			cfg := mk(seed)
			cfg.Name += "_honest"
			cfg.Faults = FaultPlan{}
			return sh.Apply(cfg)
		})
		if err != nil {
			return nil, fmt.Errorf("%s honest twin: %w", v.Name, err)
		}
		p := ChaosPoint{
			Variant:   v.Name,
			Eta:       summarizeEtas(faulty),
			HonestEta: summarizeEtas(honest),
			Converged: true,
		}
		p.EtaDrop = p.HonestEta.Mean - p.Eta.Mean
		var included, orphaned, censored, resyncs []float64
		for _, res := range faulty {
			included = append(included, float64(res.BuysIncluded))
			orphaned = append(orphaned, float64(res.BlocksOrphaned))
			censored = append(censored, float64(res.CensoredSubmitted-res.CensoredIncluded))
			resyncs = append(resyncs, res.ResyncMs...)
			p.Rejoins += res.Rejoins
			p.ResyncIncomplete += res.ResyncIncomplete
			p.AttackSent += res.AttackTxsSent
			p.AttackIncluded += res.AttackTxsIncluded
			p.AttackSucceeded += res.AttackTxsSucceeded
			p.ForgedAccepted += res.ForgedBlocksAccepted
			if !res.Converged {
				p.Converged = false
			}
		}
		p.Included = metrics.Summarize(included)
		p.Orphaned = metrics.Summarize(orphaned)
		p.Censored = metrics.Summarize(censored)
		if len(resyncs) > 0 {
			p.ResyncP50Ms = metrics.Percentile(resyncs, 0.50)
			p.ResyncP90Ms = metrics.Percentile(resyncs, 0.90)
		}
		points = append(points, p)
		if progress != nil {
			progress(fmt.Sprintf("%-16s η=%.3f honest=%.3f drop=%+.3f orphaned=%.1f resync_p50=%.0fms converged=%v",
				p.Variant, p.Eta.Mean, p.HonestEta.Mean, p.EtaDrop, p.Orphaned.Mean, p.ResyncP50Ms, p.Converged))
		}
	}
	return points, nil
}
