package sim

import "testing"

// requireIdentical compares the full workload accounting of two runs.
func requireIdentical(t *testing.T, name string, a, b Result) {
	t.Helper()
	if a.BuysSubmitted != b.BuysSubmitted || a.BuysIncluded != b.BuysIncluded ||
		a.BuysSucceeded != b.BuysSucceeded || a.BuysDropped != b.BuysDropped {
		t.Errorf("%s: buy divergence: %d/%d/%d/%d vs %d/%d/%d/%d", name,
			a.BuysSubmitted, a.BuysIncluded, a.BuysSucceeded, a.BuysDropped,
			b.BuysSubmitted, b.BuysIncluded, b.BuysSucceeded, b.BuysDropped)
	}
	if a.SetsSubmitted != b.SetsSubmitted || a.SetsIncluded != b.SetsIncluded ||
		a.SetsSucceeded != b.SetsSucceeded || a.SetsDropped != b.SetsDropped {
		t.Errorf("%s: set divergence", name)
	}
	if a.Blocks != b.Blocks || a.MsgsSent != b.MsgsSent || a.Evicted != b.Evicted {
		t.Errorf("%s: chain/network divergence: %d blocks %d msgs %d evicted vs %d/%d/%d",
			name, a.Blocks, a.MsgsSent, a.Evicted, b.Blocks, b.MsgsSent, b.Evicted)
	}
}

// TestRPCClientsEtaMatchesInProcess pins the serving tier against the
// in-process client on both Figure-2 client modes: the HTTP JSON-RPC
// round trip must return the same views and admit the same
// transactions, leaving every measured quantity bit-identical.
func TestRPCClientsEtaMatchesInProcess(t *testing.T) {
	for _, mk := range []func(int, int64) ScenarioConfig{SerethClient, GethUnmodified} {
		local, err := Run(mk(20, 101))
		if err != nil {
			t.Fatal(err)
		}
		cfg := mk(20, 101)
		cfg.RPCClients = true
		served, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, cfg.Name, local, served)
	}
}

// TestRPCClientsOverloadBackpressure proves the wire path preserves
// pool backpressure: a full pool's refusal crosses the RPC boundary as
// an error that maps back to the drop accounting, so the overload
// family measures identical drops and evictions either way.
func TestRPCClientsOverloadBackpressure(t *testing.T) {
	local, err := Run(Overload(101))
	if err != nil {
		t.Fatal(err)
	}
	if local.BuysDropped == 0 && local.Evicted == 0 {
		t.Fatal("overload fixture exerted no backpressure; the test proves nothing")
	}
	cfg := Overload(101)
	cfg.RPCClients = true
	served, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "overload", local, served)
}

// TestPersistDeterministic pins store-backed runs against plain runs on
// the paper rig (the full golden sweep lives in internal/scenarios).
func TestPersistDeterministic(t *testing.T) {
	plain, err := Run(SerethClient(20, 101))
	if err != nil {
		t.Fatal(err)
	}
	cfg := SerethClient(20, 101)
	cfg.Persist = true
	persisted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "sereth_client", plain, persisted)
}
