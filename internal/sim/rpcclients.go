// The serving-tier frontend: under ScenarioConfig.RPCClients every
// client peer is published behind a real HTTP JSON-RPC endpoint
// (rpc.Server on an httptest listener) and the workload's view reads
// and submissions travel as sereth_view / eth_getStorageAt /
// eth_sendRawTransaction calls instead of in-process method calls. The
// RPC round trip returns the same view words and admits the same
// signed transactions, so every measured η is unaffected — the mode
// exists to exercise the deployable serving path under the full
// scenario suite.
package sim

import (
	"encoding/hex"
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"sereth/internal/asm"
	"sereth/internal/node"
	"sereth/internal/rpc"
	"sereth/internal/txpool"
	"sereth/internal/types"
)

// rpcFrontend holds one HTTP server and one typed caller per client
// peer. Calls are synchronous in-process HTTP, so the simulation's
// event timeline stays fully deterministic.
type rpcFrontend struct {
	servers []*httptest.Server
	callers []*rpc.Client
}

// newRPCFrontend publishes every client peer over JSON-RPC. The
// generous timeout (vs rpc.DefaultTimeout) keeps loaded CI runners
// from injecting spurious transport failures into a deterministic run.
func newRPCFrontend(clients []*node.Node, contract types.Address) *rpcFrontend {
	f := &rpcFrontend{}
	for _, n := range clients {
		srv := httptest.NewServer(rpc.NewServer(n, contract))
		f.servers = append(f.servers, srv)
		f.callers = append(f.callers, rpc.NewClient(srv.URL, rpc.WithTimeout(30*time.Second)))
	}
	return f
}

func (f *rpcFrontend) close() {
	for _, srv := range f.servers {
		srv.Close()
	}
}

// wordFromHex parses a 32-byte word from the RPC wire encoding.
func wordFromHex(s string) (types.Word, error) {
	var w types.Word
	b, err := hex.DecodeString(strings.TrimPrefix(s, "0x"))
	if err != nil || len(b) != len(w) {
		return w, fmt.Errorf("sim: bad word %q on the rpc wire", s)
	}
	copy(w[:], b)
	return w, nil
}

// clientView reads the client's best (flag, mark, value) view of the
// managed variable, over sereth_view when the serving tier is enabled.
// The RPC server calls ViewAMV with the zero caller address; the
// Sereth contract never reads CALLER, so the words are identical to
// the in-process read for any caller.
func (s *scenario) clientView(clientIdx int, caller types.Address) (flag, mark, value types.Word, err error) {
	if s.rpc == nil {
		flag, mark, value = s.clients[clientIdx].ViewAMV(caller, s.contract)
		return flag, mark, value, nil
	}
	vr, err := s.rpc.callers[clientIdx].View()
	if err != nil {
		return flag, mark, value, err
	}
	if flag, err = wordFromHex(vr.Flag); err != nil {
		return flag, mark, value, err
	}
	if mark, err = wordFromHex(vr.Mark); err != nil {
		return flag, mark, value, err
	}
	value, err = wordFromHex(vr.Value)
	return flag, mark, value, err
}

// clientStorage reads a committed contract slot through the client,
// over eth_getStorageAt when the serving tier is enabled.
func (s *scenario) clientStorage(clientIdx int, slot uint64) (types.Word, error) {
	if s.rpc == nil {
		return s.clients[clientIdx].StorageAt(s.contract, slot), nil
	}
	var hexWord string
	err := s.rpc.callers[clientIdx].Call("eth_getStorageAt", &hexWord,
		s.contract.Hex(), fmt.Sprintf("0x%x", slot))
	if err != nil {
		return types.Word{}, err
	}
	return wordFromHex(hexWord)
}

// submitVia routes one signed transaction through the client — raw RLP
// over eth_sendRawTransaction when the serving tier is enabled, the
// in-process pool otherwise. A pool-full refusal comes back over the
// wire as a JSON-RPC internal error carrying the pool's message; it is
// mapped back to txpool.ErrPoolFull so the overload family's
// backpressure accounting is identical on both paths.
func (s *scenario) submitVia(clientIdx int, tx *types.Transaction) error {
	if s.rpc == nil {
		return s.clients[clientIdx].SubmitTx(tx)
	}
	_, err := s.rpc.callers[clientIdx].SendRawTransaction(tx.EncodeRLP())
	if err != nil && strings.Contains(err.Error(), txpool.ErrPoolFull.Error()) {
		return txpool.ErrPoolFull
	}
	return err
}

// submitSetVia signs and submits the owner's next set through the
// primary client, building the exact transaction SubmitSetPriced would.
func (s *scenario) submitSetVia(clientIdx int, gasPrice uint64, flag, prev, value types.Word) (*types.Transaction, error) {
	if s.rpc == nil {
		return s.clients[clientIdx].SubmitSetPriced(
			s.owner, s.ownerNonce, s.contract, gasPrice, flag, prev, value)
	}
	tx := s.owner.SignTx(&types.Transaction{
		Nonce:    s.ownerNonce,
		To:       s.contract,
		GasPrice: gasPrice,
		GasLimit: 300_000,
		Data:     types.EncodeCall(asm.SelSet, flag, prev, value),
	})
	return tx, s.submitVia(clientIdx, tx)
}
