GO ?= go

.PHONY: all build test race vet bench bench-eta chaos-smoke parallel-smoke serving-smoke crash-smoke elision-smoke

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the full suite (η scenarios + view-latency microbenchmarks)
# and writes BENCH_<date>.json for the cross-PR perf trajectory.
bench:
	$(GO) run ./cmd/serethbench

# bench-eta reproduces the paper's Figure-2/ablation numbers via go test
# (the shared η table in internal/scenarios).
bench-eta:
	$(GO) test -run '^$$' -bench 'BenchmarkEta|BenchmarkSequential' -benchtime 1x .

# chaos-smoke runs the fault-injection determinism/convergence tests and
# a short churn+partition sweep under the race detector.
chaos-smoke:
	$(GO) test -race -run 'TestChaosConcurrent|TestChaosTraceDeterministic|TestPartitionHealConverges|TestChurnRejoinCatchUp' ./internal/sim
	$(GO) run -race ./cmd/serethsim -experiment chaos -quick -runs 2 -churn -partition

# parallel-smoke runs the parallel-execution differential suite — the
# SpecView shadow model, the conflict-dense fuzz corpus against the
# sequential oracle, and the golden-scenario η comparison — under the
# race detector.
parallel-smoke:
	$(GO) test -race -run 'TestSpecView' ./internal/statedb
	$(GO) test -race -run 'TestParallel|FuzzParallelDifferential' ./internal/chain
	$(GO) test -race -run 'TestParallelExec' ./internal/scenarios

# crash-smoke runs the crash-consistency suite under the race detector:
# storage fault injection and salvage, the chain-level crash-point and
# bit-flip recovery sweeps (-short: 3 seeds per point), snapshot
# corruption rejection, the hardened RPC surface, and the sim crash
# scenario family against its honest twins, ending with a quick
# end-to-end crash experiment.
crash-smoke:
	$(GO) test -race ./internal/store
	$(GO) test -race -short -run 'TestCrash|TestBitFlip|TestOpenFallsBack|TestInjectedWriteFailure|TestOpenSnapshot' ./internal/chain
	$(GO) test -race -run 'TestPanic|TestMaxInFlight|TestShed|TestShutdown|TestHealth' ./internal/rpc
	$(GO) test -race -run 'TestCrash' ./internal/sim
	$(GO) run -race ./cmd/serethsim -experiment crash -quick -runs 2

# elision-smoke runs the SHA3-elision suite under the race detector:
# the keccak invocation-counter contract, the hinted/memoized jump
# table differentials and fuzz seed corpus against the raw CallGeneric
# reference, the zero-keccak frozen-instance admission and batch-id
# assertions, and the golden counter-pinned replay drop with
# bit-identical receipts (sequential and parallel lanes).
elision-smoke:
	$(GO) test -race -run 'TestInvocations' ./internal/keccak
	$(GO) test -race -run 'TestSha3|TestJumpTableMatchesGeneric|FuzzInterpreter' ./internal/evm
	$(GO) test -race -run 'TestAdmitAdoptsFrozenInstance|TestNthPoolAdmissionZeroKeccak|TestVerifiedFlagDoesNotSurviveTamper' ./internal/txpool
	$(GO) test -race -run 'TestBatchID|TestBroadcastTxsHashCount' ./internal/p2p
	$(GO) test -race -run 'TestReplayKeccakCountDrop|TestParallelReplayElidesIdentically' ./internal/scenarios

# serving-smoke runs the persistence and serving-tier suite under the
# race detector: the store, trie/state persistence and snapshot
# round-trips, restart-recovery and snapshot-bootstrap at chain and
# node level, the RPC dispatch/client surface, and the golden-scenario
# differentials with the store and the HTTP serving tier enabled.
serving-smoke:
	$(GO) test -race ./internal/store ./internal/rpc
	$(GO) test -race -run 'TestPersist|TestSnapshot|TestOpen|TestGoldenRootsWithStore' ./internal/trie ./internal/statedb ./internal/chain
	$(GO) test -race -run 'TestNodeRestart|TestSnapshot' ./internal/node
	$(GO) test -race -run 'TestRPCClients|TestPersist' ./internal/sim ./internal/scenarios
