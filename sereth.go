// Package sereth is a from-scratch Go reproduction of "Read-Uncommitted
// Transactions for Smart Contract Performance" (Cook, Painter, Peterson,
// Dechev — ICDCS 2019): the Hash-Mark-Set (HMS) algorithm, Runtime
// Argument Augmentation (RAA), the Sereth contract, and the full
// Ethereum-like substrate they run on (EVM, Merkle-Patricia state,
// transaction pool, miners, simulated peer network).
//
// The root package is the public facade: it re-exports the stable
// surface of the internal subsystems so applications can build networks,
// submit transactions, read READ-UNCOMMITTED views and replay the
// paper's experiments without importing internal packages.
//
// Quick start:
//
//	net := sereth.NewNetwork(sereth.NetworkConfig{LatencyMs: 50})
//	genesis, contract := sereth.NewGenesisWithContract()
//	owner := sereth.NewKey("owner")
//	reg := sereth.NewRegistry()
//	reg.Register(owner)
//	n, err := sereth.NewNode(sereth.NodeConfig{
//		ID: 1, Mode: sereth.ModeSereth, Miner: sereth.MinerSemantic,
//		Contract: contract, Genesis: genesis, Network: net, Registry: reg,
//	})
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package sereth

import (
	"sereth/internal/asm"
	"sereth/internal/chain"
	"sereth/internal/hms"
	"sereth/internal/node"
	"sereth/internal/p2p"
	"sereth/internal/sim"
	"sereth/internal/statedb"
	"sereth/internal/txpool"
	"sereth/internal/types"
	"sereth/internal/wallet"
)

// Core value types.
type (
	// Address is a 20-byte account identifier.
	Address = types.Address
	// Hash is a 32-byte Keccak-256 digest.
	Hash = types.Hash
	// Word is a 32-byte EVM storage/argument word.
	Word = types.Word
	// Transaction is a signed state-transition request.
	Transaction = types.Transaction
	// Block couples a header with its transaction body.
	Block = types.Block
	// Header is a block header.
	Header = types.Header
	// Receipt records the outcome of an included transaction.
	Receipt = types.Receipt
	// FPV is the (flag, previousMark, value) argument tuple of HMS writes.
	FPV = types.FPV
	// AMV is the (address, mark, value) state tuple managed by HMS.
	AMV = types.AMV
	// Selector is a 4-byte ABI function selector.
	Selector = types.Selector
)

// Identity and signing.
type (
	// Key is a signing identity (see internal/wallet for the
	// deterministic scheme substituting secp256k1; DESIGN.md §5).
	Key = wallet.Key
	// Registry verifies transaction signatures for known accounts.
	Registry = wallet.Registry
)

// Networking and nodes.
type (
	// Network is the in-process simulated peer network.
	Network = p2p.Network
	// NetworkConfig parameterizes gossip latency, loss and topology.
	NetworkConfig = p2p.Config
	// Topology selects the gossip graph (mesh, ring, random d-regular).
	Topology = p2p.Topology
	// PeerID identifies a peer.
	PeerID = p2p.PeerID
	// Node is a full validating client (Geth or Sereth mode).
	Node = node.Node
	// NodeConfigInternal is the underlying node configuration.
	NodeConfigInternal = node.Config
	// Mode selects the client type.
	Mode = node.Mode
	// MinerKind selects the mining strategy.
	MinerKind = node.MinerKind
	// ChainConfig parameterizes a chain.
	ChainConfig = chain.Config
	// StateDB is the journaled world state.
	StateDB = statedb.StateDB
)

// HMS core.
type (
	// Tracker computes Hash-Mark-Set views over a pending pool. Attach it
	// to a TxPool for incremental O(Δ) view maintenance.
	Tracker = hms.Tracker
	// TrackerConfig identifies the managed contract and selectors.
	TrackerConfig = hms.Config
	// View is a READ-UNCOMMITTED view of the managed variable.
	View = hms.View
	// TxPool is the pending transaction pool with a change feed trackers
	// subscribe to.
	TxPool = txpool.Pool
)

// NewTxPool returns an empty pending transaction pool.
func NewTxPool() *TxPool { return txpool.New() }

// Experiment harness.
type (
	// ScenarioConfig parameterizes one experiment run.
	ScenarioConfig = sim.ScenarioConfig
	// ScenarioResult aggregates one run.
	ScenarioResult = sim.Result
	// SweepPoint is one aggregated cell of a sweep.
	SweepPoint = sim.SweepPoint
	// PopulationShape overrides a sweep's peer population and topology.
	PopulationShape = sim.Shape
)

// Client modes and miner kinds.
const (
	ModeGeth      = node.ModeGeth
	ModeSereth    = node.ModeSereth
	MinerNone     = node.MinerNone
	MinerBaseline = node.MinerBaseline
	MinerSemantic = node.MinerSemantic
)

// FPV flags.
var (
	// FlagHead marks a head-candidate transaction.
	FlagHead = types.FlagHead
	// FlagChain marks a successor transaction.
	FlagChain = types.FlagChain
)

// Sereth contract ABI.
var (
	// SelSet is the selector of set(bytes32[3]).
	SelSet = asm.SelSet
	// SelBuy is the selector of buy(bytes32[3]).
	SelBuy = asm.SelBuy
	// SelGet is the selector of get(bytes32[3]).
	SelGet = asm.SelGet
	// SelMark is the selector of mark(bytes32[3]).
	SelMark = asm.SelMark
)

// Contract storage slots (paper Listing 1 layout).
const (
	SlotAddress = asm.SlotAddress
	SlotMark    = asm.SlotMark
	SlotValue   = asm.SlotValue
	SlotNSet    = asm.SlotNSet
	SlotNBuy    = asm.SlotNBuy
)

// NewKey derives a deterministic signing key from a seed string.
func NewKey(seed string) *Key { return wallet.NewKey(seed) }

// NewRegistry returns an empty signature-verification registry.
func NewRegistry() *Registry { return wallet.NewRegistry() }

// Keccak computes the Keccak-256 digest of the concatenated inputs.
func Keccak(data ...[]byte) Hash { return types.Keccak(data...) }

// NextMark computes mark' = Keccak256(prevMark, value), the HMS chaining
// rule.
func NextMark(prevMark, value Word) Word { return types.NextMark(prevMark, value) }

// SelectorFor computes the ABI selector of a function signature string.
func SelectorFor(signature string) Selector { return types.SelectorFor(signature) }

// EncodeCall builds calldata from a selector and argument words.
func EncodeCall(sel Selector, args ...Word) []byte { return types.EncodeCall(sel, args...) }

// WordFromUint64 returns v as a big-endian storage word.
func WordFromUint64(v uint64) Word { return types.WordFromUint64(v) }

// SerethContract returns the runtime bytecode of the Sereth contract.
func SerethContract() []byte { return asm.SerethContract() }

// NewNetwork creates a simulated peer network.
func NewNetwork(cfg NetworkConfig) *Network { return p2p.NewNetwork(cfg) }

// Gossip topologies for NetworkConfig.Topology.
var (
	// MeshTopology is the one-hop full mesh (the paper rig).
	MeshTopology = p2p.Mesh
	// RingTopology relays gossip around a sorted ring.
	RingTopology = p2p.Ring
	// RandomRegularTopology is a random d-regular graph over a ring
	// backbone with multi-hop relay.
	RandomRegularTopology = p2p.RandomRegular
)

// NewStateDB returns an empty world state for genesis construction.
func NewStateDB() *StateDB { return statedb.New() }

// NewGenesisWithContract builds a genesis state with the Sereth contract
// installed at its conventional address and returns both.
func NewGenesisWithContract() (*StateDB, Address) {
	contract := Address{19: 0xcc}
	st := statedb.New()
	st.SetCode(contract, asm.SerethContract())
	return st, contract
}

// NodeConfig is the simplified public node configuration.
type NodeConfig struct {
	ID       PeerID
	Mode     Mode
	Miner    MinerKind
	Contract Address
	Genesis  *StateDB
	Network  *Network
	Registry *Registry
	// GasLimit is the block gas limit (0 = default 10M).
	GasLimit uint64
	// Seed drives miner ordering randomness.
	Seed int64
}

// NewNode builds and joins a node.
func NewNode(cfg NodeConfig) (*Node, error) {
	chainCfg := chain.DefaultConfig()
	if cfg.GasLimit > 0 {
		chainCfg.GasLimit = cfg.GasLimit
	}
	chainCfg.Registry = cfg.Registry
	return node.New(node.Config{
		ID:       cfg.ID,
		Mode:     cfg.Mode,
		Miner:    cfg.Miner,
		Contract: cfg.Contract,
		Chain:    chainCfg,
		Genesis:  cfg.Genesis,
		Network:  cfg.Network,
		Seed:     cfg.Seed,
	})
}

// NewTracker returns a standalone HMS tracker for the Sereth contract at
// the given address.
func NewTracker(contract Address) *Tracker {
	return hms.NewTracker(hms.Config{
		Contract:    contract,
		SetSelector: asm.SelSet,
		BuySelector: asm.SelBuy,
	})
}

// RunScenario executes one experiment scenario.
func RunScenario(cfg ScenarioConfig) (ScenarioResult, error) { return sim.Run(cfg) }

// OverloadScenario returns the sustained-overload configuration:
// arrival rate above block capacity into bounded evict-lowest mempools.
func OverloadScenario(seed int64) ScenarioConfig { return sim.Overload(seed) }

// Figure2Geth returns the geth_unmodified scenario at the given set count.
func Figure2Geth(sets int, seed int64) ScenarioConfig { return sim.GethUnmodified(sets, seed) }

// Figure2Sereth returns the sereth_client scenario.
func Figure2Sereth(sets int, seed int64) ScenarioConfig { return sim.SerethClient(sets, seed) }

// Figure2Semantic returns the semantic_mining scenario.
func Figure2Semantic(sets int, seed int64) ScenarioConfig { return sim.SemanticMining(sets, seed) }

// RunFigure2 sweeps the three Figure-2 scenarios.
func RunFigure2(setCounts []int, seeds []int64, progress func(string)) ([]SweepPoint, error) {
	return sim.RunFigure2(setCounts, seeds, progress)
}

// FormatSweep renders sweep points as an aligned table.
func FormatSweep(points []SweepPoint) string { return sim.FormatSweep(points) }
